"""Syndrome-extraction rounds, memory experiments and detector wiring.

Two consumers share this module:

- the *ideal* circuit builder used to validate codes and the simulator
  (logical-level, no QCCD hardware in the loop), and
- the QCCD compiler's exporter, which executes the same measurements in
  a hardware-dependent order and therefore needs the detector structure
  expressed as (qubit, round) pairs rather than record positions.

The memory experiment is the paper's workload (Sec. 6.1): prepare all
data in the basis eigenstate, run ``rounds`` rounds of parity checks,
measure all data, and compare the logical observable with the decoder's
correction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.circuit import StabilizerCircuit
from .base import StabilizerCode


@dataclass(frozen=True)
class UniformNoise:
    """Simple circuit-level depolarising noise for logical-level tests."""

    p: float

    def __post_init__(self):
        if not 0 <= self.p <= 1:
            raise ValueError("noise strength must be a probability")


@dataclass(frozen=True)
class LayeredRound:
    """One round of syndrome extraction as parallel layers.

    Each layer is a list of (gate, targets) where gate is R / H / CX / M
    and targets are code-qubit indices (CX targets are (control, target)
    pairs).  The compiler consumes this structure directly.
    """

    layers: tuple[tuple[tuple[str, tuple], ...], ...]

    def all_two_qubit_pairs(self) -> list[tuple[int, int]]:
        pairs = []
        for layer in self.layers:
            for gate, targets in layer:
                if gate == "CX":
                    pairs.extend(targets)
        return pairs


def syndrome_round(code: StabilizerCode) -> LayeredRound:
    """The standard parity-check round of Figure 3.

    Reset ancillas; Hadamard the X ancillas; four CX layers (data
    controls for Z checks, ancilla controls for X checks); Hadamard
    back; measure all ancillas.
    """
    ancillas = tuple(q.index for q in code.ancilla_qubits)
    x_ancillas = tuple(
        q.index for q in code.ancilla_qubits if q.basis == "X"
    )
    layers: list[tuple[tuple[str, tuple], ...]] = []
    layers.append((("R", ancillas),))
    if x_ancillas:
        layers.append((("H", x_ancillas),))
    for layer_idx in range(code.num_layers):
        pairs = []
        for check in code.checks:
            if layer_idx >= len(check.data_by_layer):
                continue
            data = check.data_by_layer[layer_idx]
            if data is None:
                continue
            if check.basis == "Z":
                pairs.append((data, check.ancilla))
            else:
                pairs.append((check.ancilla, data))
        if pairs:
            layers.append((("CX", tuple(pairs)),))
    if x_ancillas:
        layers.append((("H", x_ancillas),))
    layers.append((("M", ancillas),))
    return LayeredRound(tuple(layers))


# ----------------------------------------------------------------------
# Detector structure shared by ideal and compiled circuits
# ----------------------------------------------------------------------

@dataclass
class DetectorSpec:
    """Detectors of a memory experiment in (qubit, round) terms.

    ``round`` is -1 for final data measurements.  ``groups`` lists, for
    each detector, the measurements whose parity it checks; ``observable``
    lists the final data measurements forming logical Z (or X).
    """

    groups: list[list[tuple[int, int]]]
    observable: list[tuple[int, int]]


def memory_detector_spec(
    code: StabilizerCode, rounds: int, basis: str = "Z"
) -> DetectorSpec:
    """Detector wiring for a ``basis``-memory experiment."""
    if basis not in ("X", "Z"):
        raise ValueError("basis must be 'X' or 'Z'")
    if rounds < 1:
        raise ValueError("need at least one round")
    groups: list[list[tuple[int, int]]] = []
    # First round: checks of the memory basis are deterministic.
    for check in code.checks_of_basis(basis):
        groups.append([(check.ancilla, 0)])
    # Bulk rounds: every ancilla compares with its previous outcome.
    for r in range(1, rounds):
        for check in code.checks:
            groups.append([(check.ancilla, r), (check.ancilla, r - 1)])
    # Final data measurement reconstructs the basis checks.
    for check in code.checks_of_basis(basis):
        group = [(check.ancilla, rounds - 1)]
        group.extend((d, -1) for d in check.data)
        groups.append(group)
    support = code.logical_z if basis == "Z" else code.logical_x
    observable = [(q, -1) for q in support]
    return DetectorSpec(groups, observable)


def attach_detectors(
    circuit: StabilizerCircuit,
    spec: DetectorSpec,
    meas_index: dict[tuple[int, int], int],
) -> None:
    """Append DETECTOR / OBSERVABLE_INCLUDE for an already-built body.

    ``meas_index`` maps (qubit, round) — round -1 for final data
    measurements — to the absolute measurement-record position.
    """
    total = circuit.num_measurements
    for group in spec.groups:
        offsets = [meas_index[key] - total for key in group]
        circuit.append("DETECTOR", offsets)
    offsets = [meas_index[key] - total for key in spec.observable]
    circuit.append("OBSERVABLE_INCLUDE", offsets, (0,))


# ----------------------------------------------------------------------
# Ideal (hardware-free) memory circuit
# ----------------------------------------------------------------------

def ideal_memory_circuit(
    code: StabilizerCode,
    rounds: int,
    basis: str = "Z",
    noise: UniformNoise | None = None,
) -> StabilizerCircuit:
    """Logical-level memory experiment with optional uniform noise.

    Used to validate codes (noiseless determinism), calibrate decoders,
    and cross-check the compiled-circuit pipeline.
    """
    if basis not in ("X", "Z"):
        raise ValueError("basis must be 'X' or 'Z'")
    circuit = StabilizerCircuit()
    data = [q.index for q in code.data_qubits]
    round_layers = syndrome_round(code)
    meas_index: dict[tuple[int, int], int] = {}
    p = noise.p if noise else 0.0

    circuit.append("R" if basis == "Z" else "RX", data)
    if p:
        circuit.append("X_ERROR" if basis == "Z" else "Z_ERROR", data, (p,))

    for r in range(rounds):
        for layer in round_layers.layers:
            for gate, targets in layer:
                if gate == "R":
                    circuit.append("R", targets)
                    if p:
                        circuit.append("X_ERROR", targets, (p,))
                elif gate == "H":
                    circuit.append("H", targets)
                    if p:
                        circuit.append("DEPOLARIZE1", targets, (p,))
                elif gate == "CX":
                    flat = [q for pair in targets for q in pair]
                    circuit.append("CX", flat)
                    if p:
                        circuit.append("DEPOLARIZE2", flat, (p,))
                elif gate == "M":
                    if p:
                        circuit.append("X_ERROR", targets, (p,))
                    for q in targets:
                        meas_index[(q, r)] = circuit.num_measurements
                        circuit.append("M", (q,))
                else:
                    raise ValueError(f"unexpected round gate {gate}")
        circuit.append("TICK")

    if p:
        circuit.append(
            "X_ERROR" if basis == "Z" else "Z_ERROR", data, (p,)
        )
    for q in data:
        meas_index[(q, -1)] = circuit.num_measurements
        circuit.append("M" if basis == "Z" else "MX", (q,))

    spec = memory_detector_spec(code, rounds, basis)
    attach_detectors(circuit, spec, meas_index)
    return circuit
