"""Common structure for the QEC codes used in the paper.

A code is a set of *data* qubits and *ancilla* qubits laid out in the
plane, plus a list of parity checks.  Each check owns one ancilla and
up to four data qubits listed in CX-layer order — layer k of every
check executes simultaneously, which is what gives surface-code
syndrome extraction its fixed depth.  Layer orders are chosen so that
no data qubit is addressed by two checks in the same layer (verified in
the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import networkx as nx


class Role(Enum):
    DATA = "data"
    ANCILLA = "ancilla"


@dataclass(frozen=True)
class CodeQubit:
    """A physical-code-level qubit with planar coordinates."""

    index: int
    role: Role
    pos: tuple[float, float]
    basis: str | None = None  # 'X' or 'Z' for ancillas, None for data

    @property
    def is_data(self) -> bool:
        return self.role is Role.DATA


@dataclass(frozen=True)
class Check:
    """A stabilizer check: one ancilla, data targets in layer order.

    ``data_by_layer[k]`` is the data-qubit index touched in CX layer k,
    or ``None`` when this (boundary) check skips that layer.
    """

    ancilla: int
    basis: str  # 'X' or 'Z'
    data_by_layer: tuple[int | None, ...]

    @property
    def data(self) -> tuple[int, ...]:
        return tuple(q for q in self.data_by_layer if q is not None)

    @property
    def weight(self) -> int:
        return len(self.data)


class StabilizerCode:
    """Base class: geometry, checks and logical operators of a code."""

    name = "abstract"

    def __init__(self, distance: int):
        if distance < 2:
            raise ValueError("code distance must be at least 2")
        self.distance = distance
        self.qubits: list[CodeQubit] = []
        self.checks: list[Check] = []
        self.logical_z: list[int] = []  # data-qubit support of logical Z
        self.logical_x: list[int] = []
        self._build()
        self._validate()

    # Subclasses fill qubits / checks / logicals here.
    def _build(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def data_qubits(self) -> list[CodeQubit]:
        return [q for q in self.qubits if q.role is Role.DATA]

    @property
    def ancilla_qubits(self) -> list[CodeQubit]:
        return [q for q in self.qubits if q.role is Role.ANCILLA]

    @property
    def num_layers(self) -> int:
        return max(len(c.data_by_layer) for c in self.checks)

    def check_of_ancilla(self, ancilla: int) -> Check:
        for check in self.checks:
            if check.ancilla == ancilla:
                return check
        raise KeyError(f"no check uses ancilla {ancilla}")

    def checks_of_basis(self, basis: str) -> list[Check]:
        return [c for c in self.checks if c.basis == basis]

    # ------------------------------------------------------------------
    def interaction_graph(self) -> nx.Graph:
        """Qubit graph weighted by how early each entanglement happens.

        Edge weight = (num_layers - layer), so first-layer interactions
        carry the highest weight; the partitioner then avoids cutting
        them (paper Sec. 4.2).
        """
        graph = nx.Graph()
        for qubit in self.qubits:
            graph.add_node(qubit.index, pos=qubit.pos, role=qubit.role)
        layers = self.num_layers
        for check in self.checks:
            for layer, data in enumerate(check.data_by_layer):
                if data is None:
                    continue
                weight = layers - layer
                if graph.has_edge(check.ancilla, data):
                    graph[check.ancilla][data]["weight"] += weight
                else:
                    graph.add_edge(check.ancilla, data, weight=weight)
        return graph

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        indices = [q.index for q in self.qubits]
        if indices != list(range(len(indices))):
            raise ValueError("qubit indices must be 0..n-1 in order")
        data_ids = {q.index for q in self.data_qubits}
        ancilla_ids = {q.index for q in self.ancilla_qubits}
        for check in self.checks:
            if check.ancilla not in ancilla_ids:
                raise ValueError(f"check ancilla {check.ancilla} is not an ancilla")
            for d in check.data:
                if d not in data_ids:
                    raise ValueError(f"check target {d} is not a data qubit")
        # No data qubit may be touched twice in one layer.
        for layer in range(self.num_layers):
            seen: set[int] = set()
            for check in self.checks:
                if layer >= len(check.data_by_layer):
                    continue
                d = check.data_by_layer[layer]
                if d is None:
                    continue
                if d in seen:
                    raise ValueError(
                        f"layer {layer} addresses data qubit {d} twice"
                    )
                seen.add(d)
        for support in (self.logical_z, self.logical_x):
            if not set(support) <= data_ids:
                raise ValueError("logical support must be data qubits")
