"""Distance-d repetition code (bit-flip code).

The simplest benchmark in the paper (Sec. 6.1): d data qubits on a
line, d-1 weight-two Z checks between neighbours.  Used to validate the
compiler against exactly computable optimal schedules (Table 2) and
against the baseline compilers (Table 3).
"""

from __future__ import annotations

from .base import Check, CodeQubit, Role, StabilizerCode


class RepetitionCode(StabilizerCode):
    """[[d, 1, d]] bit-flip repetition code on a line."""

    name = "repetition"

    def _build(self) -> None:
        d = self.distance
        # Interleave data (even x) and ancilla (odd x) on a line so that
        # index order matches spatial order.
        index = 0
        data_ids: list[int] = []
        ancilla_ids: list[int] = []
        for i in range(2 * d - 1):
            if i % 2 == 0:
                self.qubits.append(CodeQubit(index, Role.DATA, (float(i), 0.0)))
                data_ids.append(index)
            else:
                self.qubits.append(
                    CodeQubit(index, Role.ANCILLA, (float(i), 0.0), basis="Z")
                )
                ancilla_ids.append(index)
            index += 1
        for k, ancilla in enumerate(ancilla_ids):
            left, right = data_ids[k], data_ids[k + 1]
            self.checks.append(Check(ancilla, "Z", (left, right)))
        self.logical_z = [data_ids[0]]
        self.logical_x = list(data_ids)
