"""Rectangular rotated surface patches and lattice-surgery workloads.

Sec. 8 of the paper argues its architectural results extend to lattice
surgery because the merged two-patch circuits are structurally the same
parity-check rounds on a larger (rectangular) patch.  This module makes
that claim *testable*: :class:`RectangularRotatedCode` generalises the
rotated surface code to independent x/y distances, and
:func:`merged_patch` builds the (2d+1) x d patch produced by merging two
distance-d logical qubits along their shared boundary for a logical ZZ
measurement.  The benchmark suite compiles these through the identical
toolflow and checks that the capacity-2 grid keeps its constant cycle
time (`bench_extension_surgery.py`).
"""

from __future__ import annotations

from .base import Check, CodeQubit, Role, StabilizerCode

# Hook-safe, conflict-free CX layer orders (see rotated_surface.py).
_X_ORDER = ((1, 1), (-1, 1), (1, -1), (-1, -1))
_Z_ORDER = ((1, 1), (1, -1), (-1, 1), (-1, -1))


class RectangularRotatedCode(StabilizerCode):
    """Rotated surface patch with independent horizontal and vertical
    distances ``dx`` and ``dy`` (data qubits form a dx x dy grid).

    The logical Z operator runs along a row (weight dx), logical X along
    a column (weight dy); the code distance is ``min(dx, dy)``.
    """

    name = "rectangular_rotated"

    def __init__(self, dx: int, dy: int):
        if dx < 2 or dy < 2:
            raise ValueError("patch distances must be at least 2")
        self.dx = dx
        self.dy = dy
        super().__init__(min(dx, dy))

    def _build(self) -> None:
        dx, dy = self.dx, self.dy
        index = 0
        data_at: dict[tuple[int, int], int] = {}
        for y in range(1, 2 * dy, 2):
            for x in range(1, 2 * dx, 2):
                self.qubits.append(CodeQubit(index, Role.DATA, (float(x), float(y))))
                data_at[(x, y)] = index
                index += 1

        for y in range(0, 2 * dy + 1, 2):
            for x in range(0, 2 * dx + 1, 2):
                basis = "X" if (x + y) % 4 == 0 else "Z"
                if not self._site_in_code(x, y, basis):
                    continue
                self.qubits.append(
                    CodeQubit(index, Role.ANCILLA, (float(x), float(y)), basis=basis)
                )
                order = _X_ORDER if basis == "X" else _Z_ORDER
                data_by_layer = tuple(
                    data_at.get((x + ox, y + oy)) for ox, oy in order
                )
                self.checks.append(Check(index, basis, data_by_layer))
                index += 1

        self.logical_z = [data_at[(x, 1)] for x in range(1, 2 * dx, 2)]
        self.logical_x = [data_at[(1, y)] for y in range(1, 2 * dy, 2)]

    def _site_in_code(self, x: int, y: int, basis: str) -> bool:
        inside_x = 0 < x < 2 * self.dx
        inside_y = 0 < y < 2 * self.dy
        if inside_x and inside_y:
            return True
        if not inside_x and not inside_y:
            return False
        if inside_x:  # top/bottom boundary hosts X checks
            return basis == "X"
        return basis == "Z"  # left/right boundary hosts Z checks


def merged_patch(distance: int, seam: int = 1) -> RectangularRotatedCode:
    """The merged patch of a lattice-surgery logical ZZ measurement.

    Two distance-``distance`` patches sitting side by side merge into a
    single rotated patch of width ``2*distance + seam`` and height
    ``distance`` — the structure whose parity-check rounds implement
    the joint measurement.  ``seam`` is the width of the routing strip
    between the two patches (1 in the standard construction).
    """
    if distance < 2:
        raise ValueError("distance must be at least 2")
    if seam < 1:
        raise ValueError("seam width must be at least 1")
    return RectangularRotatedCode(2 * distance + seam, distance)
