"""repro — reproduction of "Architecting Scalable Trapped Ion Quantum
Computers using Surface Codes" (Jones & Murali, ASPLOS 2026).

Subpackages
-----------
- ``repro.sim`` — stabilizer circuit simulation (Stim substitute):
  Pauli algebra, circuit IR with noise channels and detectors, exact
  tableau simulation, vectorised Pauli-frame sampling, detector error
  model extraction.
- ``repro.decoders`` — MWPM / union-find / lookup decoding of detector
  error models (PyMatching substitute).
- ``repro.codes`` — repetition, rotated and unrotated surface codes.
- ``repro.arch`` — QCCD hardware: traps/junctions/segments, grid /
  linear / switch topologies, Table-1 timings, standard vs WISE wiring,
  electrode/DAC/power resource models.
- ``repro.noise`` — trapped-ion noise channels e1-e5, motional heating
  ledger, heating-aware gate fidelity.
- ``repro.core`` — the paper's contribution: the QEC- and topology-
  aware compiler (translate, place, route, schedule) plus export of
  compiled schedules to noisy stabilizer circuits.
- ``repro.baselines`` — QCCDSim-like and Muzzle-like comparators.
- ``repro.ler`` — Monte-Carlo logical-error-rate estimation and the
  suppression-model projection used by the paper's figures.
- ``repro.engine`` — sharded, cached experiment execution: declarative
  sweep grids, content-addressed DEM/decoder-graph caching, serial and
  multiprocessing backends with deterministic SeedSequence sharding,
  resumable JSON-lines result stores.
- ``repro.toolflow`` — the Figure-2 design-space exploration pipeline.

Quick start
-----------
>>> from repro.codes import RotatedSurfaceCode
>>> from repro.core import compile_memory_experiment
>>> program = compile_memory_experiment(RotatedSurfaceCode(3), trap_capacity=2)
>>> program.stats.round_time_us > 0
True
"""

from . import arch, baselines, codes, core, decoders, engine, ler, noise, sim, toolflow

__version__ = "1.1.0"

__all__ = [
    "arch",
    "baselines",
    "codes",
    "core",
    "decoders",
    "engine",
    "ler",
    "noise",
    "sim",
    "toolflow",
    "__version__",
]
