"""Figure 12: controller data rate and power at a target LER.

Paper claims: even at the optimal capacity-2 design point, one logical
qubit at 1e-9 needs roughly a 1.3 Tbit/s controller link and ~780 W of
DAC power under standard wiring — the scaling wall motivating wiring
co-design.

Each capacity's suppression fit is one engine sweep over the distance
axis (``_common.ler_projection``); data-rate / power at the projected
target distance stay a placement / resource-model lookup.
"""

import pytest

from repro.arch import standard_resources
from repro.toolflow import format_table

from _common import capacity_projection, device_for_distance, publish, smoke

CAPACITIES = (2, 5) if smoke() else (2, 5, 12)
TARGET = 1e-9


@pytest.fixture(scope="module")
def power_rows():
    rows = []
    for cap in CAPACITIES:
        proj = capacity_projection(cap)
        d = proj.distance_for(TARGET)
        if d is None:
            rows.append({"cap": cap, "d": None})
            continue
        d = min(d, 49)
        res = standard_resources(device_for_distance(d, cap))
        rows.append({
            "cap": cap,
            "d": d,
            "data_rate_tbitps": res.data_rate_bitps / 1e12,
            "power_w": res.power_w,
        })
    return rows


def test_fig12_report(benchmark, power_rows):
    display = []
    for r in power_rows:
        if r["d"] is None:
            display.append([r["cap"], "unreachable", None, None])
        else:
            display.append([
                r["cap"], r["d"],
                round(r["data_rate_tbitps"], 3),
                round(r["power_w"], 0),
            ])
    text = benchmark(
        format_table, ["capacity", f"d @ {TARGET:g}", "Tbit/s", "power W"], display
    )
    text += (
        "\n\npaper: ~1.3 Tbit/s and ~780 W per logical qubit at 1e-9 for"
        " capacity 2 (and capacity 2 minimises both)"
        "\nmeasured: see capacity-2 row"
    )
    publish("fig12_power", text)
    if smoke():
        return  # scaling-wall thresholds need the full-shot projections
    cap2 = next(r for r in power_rows if r["cap"] == 2)
    assert cap2["d"] is not None
    # Order of magnitude of the paper's wall: hundreds of Gbit/s to a
    # few Tbit/s, hundreds of watts.
    assert 0.05 < cap2["data_rate_tbitps"] < 10
    assert 30 < cap2["power_w"] < 6000
    # Capacity 2 minimises both metrics among reachable capacities.
    for r in power_rows:
        if r["cap"] != 2 and r["d"] is not None:
            assert cap2["data_rate_tbitps"] <= r["data_rate_tbitps"] * 1.2
            assert cap2["power_w"] <= r["power_w"] * 1.2


def test_power_proportional_to_data_rate(benchmark, power_rows):
    benchmark(lambda: None)
    for r in power_rows:
        if r["d"] is None:
            continue
        # Both scale with DAC count: 30 mW and 50 Mbit/s per DAC.
        dacs_from_power = r["power_w"] / 0.03
        dacs_from_rate = r["data_rate_tbitps"] * 1e12 / 50e6
        assert dacs_from_power == pytest.approx(dacs_from_rate, rel=1e-6)


def test_bench_projection_fit(benchmark):
    from repro.ler import fit_projection

    points = [(3, 2e-4), (5, 4e-5), (7, 8e-6)]
    benchmark(fit_projection, points)
