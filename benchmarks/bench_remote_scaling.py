"""Remote-backend scaling benchmark (BENCH_remote.json).

Two measured points for the multi-slot / work-stealing engine:

- **slot scaling** — the same fixed-shot sweep against one socket
  worker advertising 1 slot and again advertising 4 slots.  The gate
  is honest about the host: with >= 4 CPU cores the 4-slot worker must
  deliver >= 2.5x the 1-slot throughput (full mode only); on smaller
  hosts (or in smoke mode) the decode threads share cores and the gate
  degrades to "multi-slot is never slower" (>= 0.85x, absorbing timer
  noise), with the skipped full gate recorded in the JSON.

- **straggler steal** — a two-worker pool where one worker sleeps
  before every shard (``--chaos-shard-delay``, so the stall
  parallelises even on one core).  The sweep runs with stealing off
  and on: stealing must engage, cut the tail wall clock, and leave the
  failure counts bit-identical to a serial run — stealing is a latency
  lever, never a statistics change.

Results go to the repo-root ``BENCH_remote.json`` so the perf gates
ride the same artifact pipeline as the other benchmarks.
"""

import json
import os
import subprocess
import sys
import time

from repro.engine import CompilationCache, SweepSpec, run_sweep
from repro.engine.remote import RemoteBackend
from repro.engine.runner import Runner

from _common import MASTER_SEED, publish, smoke

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_remote.json")
)
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

SLOT_FULL_GATE = 2.5     # 4-slot vs 1-slot throughput, >= 4 cores, full mode
SLOT_SMOKE_GATE = 0.85   # multi-slot must never be (meaningfully) slower
STRAGGLER_DELAY_S = 1.25

ENGINE_CACHE = CompilationCache()


def _spawn_worker(*extra_args: str):
    """One repro-worker subprocess on a free port -> (proc, addr)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.engine.remote",
         "--listen", "127.0.0.1:0", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        env=env, text=True,
    )
    line = proc.stdout.readline().strip()
    prefix = "repro-worker listening on "
    if not line.startswith(prefix):
        proc.kill()
        proc.wait()
        raise RuntimeError(f"worker failed to start: {line!r}")
    return proc, line[len(prefix):]


def _reap(procs) -> None:
    for proc in procs:
        if proc.poll() is None:
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def _spec(shots: int, **overrides) -> SweepSpec:
    base = dict(distances=(3,), rounds=2, shots=shots,
                master_seed=MASTER_SEED)
    base.update(overrides)
    return SweepSpec(**base)


# ----------------------------------------------------------------------
# Point 1: 1-slot vs 4-slot single-worker throughput
# ----------------------------------------------------------------------
def _timed_sweep(backend, shots: int, shard_shots: int, **runner_kw):
    """Wall clock + failures of one sweep against ``backend``, after a
    small warmup sweep that pays the one-off worker priming (circuit
    transfer, DEM build, decoder construction) outside the timed run."""
    run_sweep(_spec(shots=2 * shard_shots), backend=backend,
              shard_shots=shard_shots, cache=ENGINE_CACHE)
    runner = Runner(_spec(shots=shots), backend=backend,
                    shard_shots=shard_shots, cache=ENGINE_CACHE, **runner_kw)
    t0 = time.perf_counter()
    results = runner.run()
    wall_s = time.perf_counter() - t0
    return wall_s, [r.failures for r in results], runner.steal_stats


def _slot_point(slots: int, shots: int, shard_shots: int) -> dict:
    proc, addr = _spawn_worker("--slots", str(slots))
    try:
        with RemoteBackend([addr]) as backend:
            wall_s, failures, _ = _timed_sweep(backend, shots, shard_shots)
    finally:
        _reap([proc])
    return {
        "slots": slots,
        "wall_s": round(wall_s, 4),
        "shots_per_s": round(shots / wall_s, 1),
        "failures": failures,
    }


# ----------------------------------------------------------------------
# Point 2: forced straggler, stealing off vs on
# ----------------------------------------------------------------------
def _straggler_point(steal: bool, shots: int, shard_shots: int) -> dict:
    # The fast worker is listed first so load-rank ties favour it and
    # stolen windows drain onto it rather than queueing behind the
    # straggler's sleep.
    fast_proc, fast_addr = _spawn_worker()
    slow_proc, slow_addr = _spawn_worker(
        "--chaos-shard-delay", str(STRAGGLER_DELAY_S)
    )
    try:
        with RemoteBackend([fast_addr, slow_addr]) as backend:
            wall_s, failures, steals = _timed_sweep(
                backend, shots, shard_shots,
                steal=steal, steal_min_shots=shard_shots // 2,
            )
    finally:
        _reap([fast_proc, slow_proc])
    return {
        "steal": steal,
        "wall_s": round(wall_s, 4),
        "failures": failures,
        "steal_stats": steals,
    }


def test_remote_scaling():
    cores = os.cpu_count() or 1
    shots = 2048 if smoke() else 16384
    shard_shots = 256

    one = _slot_point(1, shots, shard_shots)
    four = _slot_point(4, shots, shard_shots)
    speedup = four["shots_per_s"] / one["shots_per_s"]
    full_gate_checked = not smoke() and cores >= 4
    full_gate_skip_reason = (
        None if full_gate_checked else (
            f"os.cpu_count()={cores} < 4: the decode threads share "
            "cores, so the 4-slot speedup gate cannot be meaningful "
            "on this host" if cores < 4
            else "smoke mode: shrunken workload, full gate skipped"
        )
    )

    straggler_shots = 384
    straggler_shard = 128
    off = _straggler_point(False, straggler_shots, straggler_shard)
    on = _straggler_point(True, straggler_shots, straggler_shard)
    serial_failures = [
        r.failures for r in run_sweep(
            _spec(shots=straggler_shots), shard_shots=straggler_shard,
            cache=ENGINE_CACHE,
        )
    ]
    tail_saving_s = off["wall_s"] - on["wall_s"]

    publish("bench_remote_scaling", "\n".join([
        f"host cores: {cores}  mode: {'smoke' if smoke() else 'full'}",
        f"slot scaling ({shots} shots, shard {shard_shots}):",
        f"  1-slot: {one['wall_s']:.2f}s  {one['shots_per_s']:>9,.0f} shots/s",
        f"  4-slot: {four['wall_s']:.2f}s  {four['shots_per_s']:>9,.0f} shots/s"
        f"  -> {speedup:.2f}x",
        f"  full >= {SLOT_FULL_GATE}x gate: "
        + ("checked" if full_gate_checked
           else f"skipped ({full_gate_skip_reason})"),
        f"straggler steal ({straggler_shots} shots, shard {straggler_shard}, "
        f"delay {STRAGGLER_DELAY_S}s):",
        f"  steal off: {off['wall_s']:.2f}s",
        f"  steal on:  {on['wall_s']:.2f}s "
        f"({on['steal_stats'].get('steals', 0)} steal(s), "
        f"{on['steal_stats'].get('windows', 0)} window(s)) "
        f"-> tail saving {tail_saving_s:+.2f}s",
        f"  failures serial/off/on: {serial_failures}/"
        f"{off['failures']}/{on['failures']} (must match)",
    ]))

    payload = {
        "benchmark": "bench_remote_scaling",
        "smoke": smoke(),
        "cpu_count": cores,
        "slot_scaling": {
            "shots": shots,
            "shard_shots": shard_shots,
            "one_slot": one,
            "four_slot": four,
            "speedup": round(speedup, 3),
            "smoke_gate": SLOT_SMOKE_GATE,
            "full_gate": SLOT_FULL_GATE,
            "full_gate_checked": full_gate_checked,
            "full_gate_skip_reason": full_gate_skip_reason,
        },
        "straggler": {
            "shots": straggler_shots,
            "shard_shots": straggler_shard,
            "chaos_delay_s": STRAGGLER_DELAY_S,
            "steal_off": off,
            "steal_on": on,
            "tail_saving_s": round(tail_saving_s, 4),
            "serial_failures": serial_failures,
        },
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # --- gates --------------------------------------------------------
    # Multi-slot decode must never cost throughput, and bit-identity
    # must hold across slot counts.
    assert four["failures"] == one["failures"]
    assert speedup >= SLOT_SMOKE_GATE, (
        f"4-slot worker slower than 1-slot: {speedup:.2f}x"
    )
    if full_gate_checked:
        assert speedup >= SLOT_FULL_GATE, (
            f"4-slot speedup {speedup:.2f}x below the "
            f"{SLOT_FULL_GATE}x gate on a {cores}-core host"
        )
    # Stealing must engage on the forced straggler, win wall clock,
    # and change nothing statistical.
    assert on["steal_stats"].get("steals", 0) >= 1, (
        "forced straggler was never stolen"
    )
    assert on["wall_s"] < off["wall_s"], (
        f"stealing did not reduce the straggler tail: "
        f"on {on['wall_s']:.2f}s vs off {off['wall_s']:.2f}s"
    )
    assert off["failures"] == serial_failures
    assert on["failures"] == serial_failures
