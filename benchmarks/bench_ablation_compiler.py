"""Ablations of the compiler's design choices (DESIGN.md index).

Quantifies how much each ingredient of the compiler contributes, by
knocking them out one at a time on the d=3 capacity-2 grid workload:

- *commutation-aware DAG* -> strict program order (what a generic NISQ
  compiler sees);
- *prefetch restoration* -> surplus ions go to the nearest free slot
  instead of towards their next gate;
- *wait-vs-detour policy* -> always take the shortest admissible path,
  however congested.
"""

import pytest

from repro.arch import DEFAULT_TIMES
from repro.baselines.qccdsim_like import _sequentialise
from repro.codes import RotatedSurfaceCode
from repro.core import Router, build_gate_dag, compute_stats, place, schedule_asap
from repro.core.schedule import makespan
from repro.toolflow import format_table

from _common import publish

ROUNDS = 3


class _NoPrefetchRouter(Router):
    def _restoration_path(self, ion, alloc):
        src = self.location[ion]
        return self._find_path_to_any(
            src,
            alloc,
            lambda t: alloc[t] < self.device.trap_capacity - 1 and t != src,
        )


class _NoWaitRouter(Router):
    DETOUR_TOLERANCE = float("inf")


def _run(router_cls, sequential=False):
    code = RotatedSurfaceCode(3)
    gates = build_gate_dag(code, ROUNDS)
    if sequential:
        gates = _sequentialise(gates)
    placement = place(code, 2, "grid")
    ops = router_cls(code, placement, gates, DEFAULT_TIMES).run()
    start = schedule_asap(ops)
    stats = compute_stats(ops, start, ROUNDS)
    return stats


@pytest.fixture(scope="module")
def ablation_rows():
    variants = [
        ("full compiler", Router, False),
        ("no commutation DAG", Router, True),
        ("no prefetch restore", _NoPrefetchRouter, False),
        ("no wait-vs-detour", _NoWaitRouter, False),
    ]
    rows = []
    for name, cls, sequential in variants:
        stats = _run(cls, sequential)
        rows.append({
            "variant": name,
            "round_us": stats.round_time_us,
            "movement_ops": stats.movement_ops,
            "movement_us": stats.movement_time_us,
        })
    return rows


def test_ablation_report(benchmark, ablation_rows):
    base = ablation_rows[0]
    display = [
        [r["variant"], round(r["round_us"], 0), r["movement_ops"],
         round(r["round_us"] / base["round_us"], 2)]
        for r in ablation_rows
    ]
    text = benchmark(
        format_table,
        ["variant", "round us", "movement ops", "slowdown vs full"],
        display,
    )
    text += (
        "\n\nevery knocked-out ingredient costs movement operations,"
        " round time, or both — the compiler's advantage in Table 3 is"
        " the combination"
    )
    publish("ablation_compiler", text)
    for r in ablation_rows[1:]:
        worse_time = r["round_us"] > base["round_us"] * 1.02
        worse_moves = r["movement_ops"] > base["movement_ops"] * 1.02
        assert worse_time or worse_moves, r["variant"]


def test_bench_full_compiler(benchmark):
    benchmark(_run, Router, False)
