"""Figure 9: QEC round time vs trap capacity and code distance (grid).

Paper claims: capacity 2 achieves the lowest round times, close to the
no-reconfiguration lower bound, and — uniquely — *constant* round time
irrespective of code distance; higher capacities serialise in-trap
operations and slow down as the code grows, approaching the
all-ions-in-one-trap upper bound.
"""

import pytest

from repro.codes import RotatedSurfaceCode
from repro.core import single_chain_round_time, steady_round_time
from repro.toolflow import format_table

from _common import publish

CAPACITIES = (2, 3, 5, 12)
DISTANCES = (3, 5, 7)


def _lower_bound(code) -> float:
    """No reconfigurations, full parallelism: R + 2H + 4 CX + M."""
    from repro.arch import DEFAULT_TIMES as T

    return T.reset + 2 * T.hadamard + 4 * T.cx + T.measurement


@pytest.fixture(scope="module")
def capacity_table():
    table = {}
    for cap in CAPACITIES:
        for d in DISTANCES:
            table[(cap, d)] = steady_round_time(
                RotatedSurfaceCode(d), trap_capacity=cap, topology="grid"
            )
    return table


def test_fig09_report(benchmark, capacity_table):
    rows = []
    for cap in CAPACITIES:
        rows.append(
            [cap] + [round(capacity_table[(cap, d)], 0) for d in DISTANCES]
        )
    code = RotatedSurfaceCode(DISTANCES[0])
    rows.append(["lower bound", round(_lower_bound(code), 0), "-", "-"])
    rows.append([
        "upper bound (1 trap)",
        *(round(single_chain_round_time(RotatedSurfaceCode(d)), 0)
          for d in DISTANCES),
    ])
    text = benchmark(
        format_table, ["capacity"] + [f"d={d} round us" for d in DISTANCES], rows
    )
    cap2 = [capacity_table[(2, d)] for d in DISTANCES]
    growth2 = max(cap2) / min(cap2)
    cap12_growth = capacity_table[(12, 7)] / capacity_table[(12, 3)]
    text += (
        f"\n\npaper: capacity 2 constant in d and lowest at scale; larger"
        f" capacities grow with d"
        f"\nmeasured: capacity-2 spread {growth2:.2f}x across d=3..7;"
        f" capacity-12 grows {cap12_growth:.2f}x; at d=7 capacity 2 is"
        f" {capacity_table[(12, 7)] / capacity_table[(2, 7)]:.1f}x faster"
        f" than capacity 12"
    )
    publish("fig09_capacity_round_time", text)
    assert growth2 < 1.6
    assert cap12_growth > 1.8
    assert capacity_table[(2, 7)] < capacity_table[(12, 7)]
    assert capacity_table[(2, 7)] < capacity_table[(5, 7)]


def test_fig09_upper_bound_dominates(benchmark, capacity_table):
    benchmark(single_chain_round_time, RotatedSurfaceCode(3))
    """Every compiled round beats full serialisation."""
    for d in DISTANCES:
        upper = single_chain_round_time(RotatedSurfaceCode(d))
        assert capacity_table[(2, d)] < upper


def test_bench_round_time_capacity12(benchmark):
    benchmark(
        steady_round_time, RotatedSurfaceCode(3), 12, "grid"
    )
