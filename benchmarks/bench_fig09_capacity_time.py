"""Figure 9: QEC round time vs trap capacity and code distance (grid).

Paper claims: capacity 2 achieves the lowest round times, close to the
no-reconfiguration lower bound, and — uniquely — *constant* round time
irrespective of code distance; higher capacities serialise in-trap
operations and slow down as the code grows, approaching the
all-ions-in-one-trap upper bound.

The (capacity x distance) grid runs through the execution engine as
compile-only :class:`SweepSpec` sweeps (see ``_common.steady_round_times``);
the analytic lower/upper bounds stay hand-derived.
"""

import pytest

from repro.codes import RotatedSurfaceCode
from repro.core import single_chain_round_time
from repro.toolflow import format_table

from _common import publish, smoke, steady_round_times

CAPACITIES = (2, 12) if smoke() else (2, 3, 5, 12)
DISTANCES = (3, 5) if smoke() else (3, 5, 7)


def _lower_bound(code) -> float:
    """No reconfigurations, full parallelism: R + 2H + 4 CX + M."""
    from repro.arch import DEFAULT_TIMES as T

    return T.reset + 2 * T.hadamard + 4 * T.cx + T.measurement


@pytest.fixture(scope="module")
def capacity_table():
    times = steady_round_times("rotated_surface", DISTANCES, CAPACITIES)
    return {
        (cap, d): times[(d, cap, "grid")]
        for cap in CAPACITIES for d in DISTANCES
    }


def test_fig09_report(benchmark, capacity_table):
    rows = []
    for cap in CAPACITIES:
        rows.append(
            [cap] + [round(capacity_table[(cap, d)], 0) for d in DISTANCES]
        )
    code = RotatedSurfaceCode(DISTANCES[0])
    rows.append(["lower bound", round(_lower_bound(code), 0)]
                + ["-"] * (len(DISTANCES) - 1))
    rows.append([
        "upper bound (1 trap)",
        *(round(single_chain_round_time(RotatedSurfaceCode(d)), 0)
          for d in DISTANCES),
    ])
    text = benchmark(
        format_table, ["capacity"] + [f"d={d} round us" for d in DISTANCES], rows
    )
    d_min, d_max = DISTANCES[0], DISTANCES[-1]
    cap2 = [capacity_table[(2, d)] for d in DISTANCES]
    growth2 = max(cap2) / min(cap2)
    cap12_growth = capacity_table[(12, d_max)] / capacity_table[(12, d_min)]
    text += (
        f"\n\npaper: capacity 2 constant in d and lowest at scale; larger"
        f" capacities grow with d"
        f"\nmeasured: capacity-2 spread {growth2:.2f}x across d={d_min}"
        f"..{d_max}; capacity-12 grows {cap12_growth:.2f}x; at d={d_max}"
        f" capacity 2 is"
        f" {capacity_table[(12, d_max)] / capacity_table[(2, d_max)]:.1f}x faster"
        f" than capacity 12"
    )
    publish("fig09_capacity_round_time", text)
    assert capacity_table[(2, d_max)] < capacity_table[(12, d_max)]
    if smoke():
        return  # trend thresholds need the full d=3..7 grid
    assert growth2 < 1.6
    assert cap12_growth > 1.8
    assert capacity_table[(2, 7)] < capacity_table[(5, 7)]


def test_fig09_upper_bound_dominates(benchmark, capacity_table):
    benchmark(single_chain_round_time, RotatedSurfaceCode(3))
    """Every compiled round beats full serialisation."""
    for d in DISTANCES:
        upper = single_chain_round_time(RotatedSurfaceCode(d))
        assert capacity_table[(2, d)] < upper


def test_bench_round_time_capacity12(benchmark):
    from repro.core import steady_round_time

    benchmark(
        steady_round_time, RotatedSurfaceCode(3), 12, "grid"
    )
