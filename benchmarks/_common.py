"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark prints its paper-vs-measured table and also writes it to
``benchmarks/results/<name>.txt`` so the comparison survives pytest's
output capture.  Benchmark parameters are deliberately smaller than the
paper's full sweeps (distances to 7 instead of 20, thousands instead of
millions of shots) so the whole harness runs in minutes on a laptop —
EXPERIMENTS.md records how each trend maps onto the paper's.
"""

from __future__ import annotations

import functools
import os

from repro.ler import LerProjection, fit_projection
from repro.toolflow import DesignSpaceExplorer

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


@functools.lru_cache(maxsize=None)
def _explorer() -> DesignSpaceExplorer:
    return DesignSpaceExplorer(code_name="rotated_surface")


@functools.lru_cache(maxsize=None)
def ler_point(
    distance: int,
    capacity: int,
    improvement: float,
    wiring: str = "standard",
    shots: int = 6000,
    decoder: str = "mwpm",
):
    """Cached Monte-Carlo LER evaluation of one design point."""
    return _explorer().evaluate(
        distance,
        capacity=capacity,
        topology="grid",
        wiring=wiring,
        gate_improvement=improvement,
        shots=shots,
        decoder=decoder,
    )


@functools.lru_cache(maxsize=None)
def ler_projection(
    capacity: int,
    improvement: float,
    wiring: str = "standard",
    distances: tuple[int, ...] = (3, 5),
    shots: int = 6000,
    decoder: str = "mwpm",
) -> LerProjection:
    """Cached suppression-model fit for one architecture."""
    points = []
    for d in distances:
        record = ler_point(d, capacity, improvement, wiring, shots, decoder)
        points.append((d, record.ler_per_round))
    return fit_projection(points)


def capacity_projection(capacity: int) -> LerProjection:
    """The 5x-improvement suppression fit used by Figures 11 and 12.

    Capacity 2 sits deep below threshold, so pinning its Lambda needs
    many more shots than the noisier large-trap design points.
    """
    shots = 30000 if capacity == 2 else 8000
    return ler_projection(capacity, 5.0, "standard", (3, 5), shots, "mwpm")


def device_for_distance(distance: int, capacity: int):
    """The placed device for one design point (for resource estimates)."""
    from repro.codes import RotatedSurfaceCode
    from repro.core import place

    return place(RotatedSurfaceCode(distance), capacity, "grid").device
