"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark prints its paper-vs-measured table and also writes it to
``benchmarks/results/<name>.txt`` so the comparison survives pytest's
output capture.  Benchmark parameters are deliberately smaller than the
paper's full sweeps (distances to 7 instead of 20, thousands instead of
millions of shots) so the whole harness runs in minutes on a laptop —
EXPERIMENTS.md records how each trend maps onto the paper's.

Monte-Carlo points run through the execution engine (``repro.engine``):
one process-wide :class:`~repro.engine.CompilationCache` means every
unique circuit's DEM / detector graph is extracted once across the
whole benchmark session, and ``REPRO_BENCH_WORKERS=N`` shards shots
over N worker processes without changing any measured number (shard
RNG streams are fixed by the master seed, not by the worker count).
"""

from __future__ import annotations

import functools
import os

from repro.engine import CompilationCache, MultiprocessBackend, SweepSpec
from repro.ler import LerProjection, fit_projection
from repro.toolflow import DesignSpaceExplorer

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
MASTER_SEED = 2026

# One compilation cache for the whole benchmark session: figures share
# design points, so DEM extraction happens once per unique circuit.
ENGINE_CACHE = CompilationCache()


def bench_workers() -> int:
    """Worker processes for shot sharding (0 = serial)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))


@functools.lru_cache(maxsize=None)
def _shared_backend():
    """One worker pool for the whole session (None = run serial).

    Sharing the backend keeps the workers' per-process circuit /
    decoder memos alive across all benchmark sweeps instead of paying
    pool startup per ``ler_point`` call; the pool dies with pytest.
    """
    workers = bench_workers()
    return MultiprocessBackend(max_workers=workers) if workers > 1 else None


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


@functools.lru_cache(maxsize=None)
def _explorer() -> DesignSpaceExplorer:
    return DesignSpaceExplorer(code_name="rotated_surface")


def run_points(spec: SweepSpec):
    """Engine-backed evaluation of a sweep grid, shared-cache + sharded."""
    backend = _shared_backend()
    if backend is None:
        return _explorer().sweep(spec, cache=ENGINE_CACHE)
    return _explorer().sweep(spec, cache=ENGINE_CACHE, backend=backend)


@functools.lru_cache(maxsize=None)
def ler_point(
    distance: int,
    capacity: int,
    improvement: float,
    wiring: str = "standard",
    shots: int = 6000,
    decoder: str = "mwpm",
):
    """Cached Monte-Carlo LER evaluation of one design point."""
    spec = SweepSpec(
        distances=(distance,),
        capacities=(capacity,),
        wirings=(wiring,),
        gate_improvements=(improvement,),
        decoders=(decoder,),
        shots=shots,
        master_seed=MASTER_SEED,
    )
    [record] = run_points(spec)
    return record


@functools.lru_cache(maxsize=None)
def ler_projection(
    capacity: int,
    improvement: float,
    wiring: str = "standard",
    distances: tuple[int, ...] = (3, 5),
    shots: int = 6000,
    decoder: str = "mwpm",
) -> LerProjection:
    """Cached suppression-model fit for one architecture.

    Reuses ``ler_point`` results: the engine keys shard RNG streams by
    job content, so a design point sampled here and sampled standalone
    yields identical failure counts.
    """
    points = []
    for d in distances:
        record = ler_point(d, capacity, improvement, wiring, shots, decoder)
        points.append((d, record.ler_per_round))
    return fit_projection(points)


def capacity_projection(capacity: int) -> LerProjection:
    """The 5x-improvement suppression fit used by Figures 11 and 12.

    Capacity 2 sits deep below threshold, so pinning its Lambda needs
    many more shots than the noisier large-trap design points.
    """
    shots = 30000 if capacity == 2 else 8000
    return ler_projection(capacity, 5.0, "standard", (3, 5), shots, "mwpm")


def device_for_distance(distance: int, capacity: int):
    """The placed device for one design point (for resource estimates)."""
    from repro.codes import RotatedSurfaceCode
    from repro.core import place

    return place(RotatedSurfaceCode(distance), capacity, "grid").device
