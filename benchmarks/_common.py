"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark prints its paper-vs-measured table and also writes it to
``benchmarks/results/<name>.txt`` so the comparison survives pytest's
output capture.  Benchmark parameters are deliberately smaller than the
paper's full sweeps (distances to 7 instead of 20, thousands instead of
millions of shots) so the whole harness runs in minutes on a laptop —
EXPERIMENTS.md records how each trend maps onto the paper's.

Every grid — Monte-Carlo *and* compile-only — runs through the
execution engine (``repro.engine``) as a :class:`SweepSpec`: one
process-wide :class:`~repro.engine.CompilationCache` means every
unique circuit's DEM / detector graph is extracted once across the
whole benchmark session, and ``REPRO_BENCH_WORKERS=N`` shards shots
over N worker processes without changing any measured number (shard
RNG streams are fixed by the master seed, not by the worker count).

``--smoke`` (or ``REPRO_BENCH_SMOKE=1``) shrinks the grids to a
CI-sized subset; benchmarks keep emitting their tables but skip the
trend assertions that need the full grid.
"""

from __future__ import annotations

import functools
import os

from repro.engine import CompilationCache, MultiprocessBackend, SweepSpec
from repro.ler import LerProjection, fit_projection
from repro.toolflow import DesignSpaceExplorer

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
MASTER_SEED = 2026

# One compilation cache for the whole benchmark session: figures share
# design points, so DEM extraction happens once per unique circuit.
ENGINE_CACHE = CompilationCache()


def smoke() -> bool:
    """CI smoke mode: shrunken grids, trend assertions relaxed."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


def bench_workers() -> int:
    """Worker processes for shot sharding (0 = serial)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", "0"))


@functools.lru_cache(maxsize=None)
def _shared_backend():
    """One worker pool for the whole session (None = run serial).

    Sharing the backend keeps the workers' per-process circuit /
    decoder memos alive across all benchmark sweeps instead of paying
    pool startup per ``ler_point`` call; the pool dies with pytest.
    ``REPRO_BENCH_WORKERS_ADDR=host:port,...`` swaps in the socket
    backend instead: the grids fan out to already-running
    ``repro-worker`` processes (shard seeds are fixed by the master
    seed, so every measured number is unchanged).
    """
    addrs = os.environ.get("REPRO_BENCH_WORKERS_ADDR", "")
    if addrs:
        from repro.engine.remote import RemoteBackend

        return RemoteBackend(addrs)
    workers = bench_workers()
    return MultiprocessBackend(max_workers=workers) if workers > 1 else None


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/.

    Smoke runs write to a ``smoke/`` subdirectory so the checked-in
    full-grid reference tables are never clobbered by a CI-sized run.
    """
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    out_dir = os.path.join(RESULTS_DIR, "smoke") if smoke() else RESULTS_DIR
    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


@functools.lru_cache(maxsize=None)
def _explorer(code_name: str = "rotated_surface") -> DesignSpaceExplorer:
    return DesignSpaceExplorer(code_name=code_name)


def run_points(spec: SweepSpec):
    """Engine-backed evaluation of a sweep grid, shared-cache + sharded."""
    backend = _shared_backend()
    if backend is None:
        return _explorer(spec.code).sweep(spec, cache=ENGINE_CACHE)
    return _explorer(spec.code).sweep(spec, cache=ENGINE_CACHE, backend=backend)


# ----------------------------------------------------------------------
# Compile-only grids (round times, movement stats, resources)
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def compile_grid(
    code_name: str,
    distances: tuple[int, ...],
    capacities: tuple[int, ...] = (2,),
    topologies: tuple[str, ...] = ("grid",),
    rounds: int | None = None,
):
    """Compile-only engine sweep over a (distance x capacity x topology)
    grid; returns ``{(distance, capacity, topology): EvaluationRecord}``."""
    spec = SweepSpec(
        code=code_name,
        distances=distances,
        capacities=capacities,
        topologies=topologies,
        rounds=rounds,
        shots=0,
        master_seed=MASTER_SEED,
    )
    records = run_points(spec)
    return {(r.distance, r.capacity, r.topology): r for r in records}


def steady_round_times(
    code_name: str,
    distances: tuple[int, ...],
    capacities: tuple[int, ...],
    topologies: tuple[str, ...] = ("grid",),
    probe_rounds: tuple[int, int] = (2, 4),
):
    """Steady-state QEC round times for a whole grid, engine-backed.

    Same two-point makespan slope as :func:`repro.core.steady_round_time`
    (removing the one-off state-prep / readout cost), but the grid runs
    as two compile-only :class:`SweepSpec` sweeps instead of a
    hand-rolled loop of per-point compiles.
    """
    r1, r2 = probe_rounds
    first = compile_grid(code_name, distances, capacities, topologies, rounds=r1)
    second = compile_grid(code_name, distances, capacities, topologies, rounds=r2)
    return {
        key: (second[key].makespan_us - first[key].makespan_us) / (r2 - r1)
        for key in first
    }


def compile_records(code_name: str, configs, rounds: int):
    """Compile-only engine records for an irregular config list.

    ``configs`` is an iterable of ``(distance, capacity, topology)``
    tuples (not necessarily a cross-product); they are grouped into the
    fewest :class:`SweepSpec` distance-axis grids that cover them.
    Returns ``{(distance, capacity, topology): EvaluationRecord}``.
    """
    by_axis: dict[tuple[int, str], list[int]] = {}
    for distance, capacity, topology in configs:
        by_axis.setdefault((capacity, topology), []).append(distance)
    table = {}
    for (capacity, topology), distances in by_axis.items():
        table.update(compile_grid(
            code_name,
            tuple(sorted(set(distances))),
            (capacity,),
            (topology,),
            rounds=rounds,
        ))
    return table


# ----------------------------------------------------------------------
# Monte-Carlo LER grids and suppression-model fits
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def ler_point(
    distance: int,
    capacity: int,
    improvement: float,
    wiring: str = "standard",
    shots: int = 6000,
    decoder: str = "mwpm",
):
    """Cached Monte-Carlo LER evaluation of one design point."""
    spec = SweepSpec(
        distances=(distance,),
        capacities=(capacity,),
        wirings=(wiring,),
        gate_improvements=(improvement,),
        decoders=(decoder,),
        shots=shots,
        master_seed=MASTER_SEED,
    )
    [record] = run_points(spec)
    return record


@functools.lru_cache(maxsize=None)
def ler_projection(
    capacity: int,
    improvement: float,
    wiring: str = "standard",
    distances: tuple[int, ...] = (3, 5),
    shots: int = 6000,
    decoder: str = "mwpm",
) -> LerProjection:
    """Cached suppression-model fit for one architecture.

    The distance axis runs as a single engine sweep; the engine keys
    shard RNG streams by job content, so a design point sampled here
    and sampled standalone via :func:`ler_point` yields identical
    failure counts.
    """
    spec = SweepSpec(
        distances=distances,
        capacities=(capacity,),
        wirings=(wiring,),
        gate_improvements=(improvement,),
        decoders=(decoder,),
        shots=shots,
        master_seed=MASTER_SEED,
    )
    points = [(r.distance, r.ler_per_round) for r in run_points(spec)]
    return fit_projection(points)


def capacity_projection(capacity: int) -> LerProjection:
    """The 5x-improvement suppression fit used by Figures 11 and 12.

    Capacity 2 sits deep below threshold, so pinning its Lambda needs
    many more shots than the noisier large-trap design points.
    """
    shots = 30000 if capacity == 2 else 8000
    if smoke():
        shots = min(shots, 4000)
    return ler_projection(capacity, 5.0, "standard", (3, 5), shots, "mwpm")


def device_for_distance(distance: int, capacity: int):
    """The placed device for one design point (for resource estimates).

    Resource models need only a placement, and the paper's projected
    target distances (up to d~49) are far beyond what a full
    compile+schedule can reach — so this stays a placement lookup
    rather than an engine compile job.
    """
    from repro.codes import RotatedSurfaceCode
    from repro.core import place

    return place(RotatedSurfaceCode(distance), capacity, "grid").device
