"""Figure 10: logical error rate vs distance under gate improvements.

Paper claims: capacity 2 beats larger capacities by 1-2 orders of
magnitude in LER; with a 10x gate improvement, d=13 reaches the 1e-9
practicality target (d=18 without it, i.e. at 5x); at 1x the target is
out of practical reach.

Method: Monte-Carlo at small distances, then the suppression-model
projection (the figures in the paper are themselves projections).
"""

import pytest

from repro.engine import SweepSpec
from repro.ler import fit_projection
from repro.toolflow import format_table

from _common import MASTER_SEED, ler_point, publish, run_points


def test_fig10_improvement_projections(benchmark):
    rows = []
    fits = {}
    for improvement, decoder, shots in (
        (1.0, "union_find", 2000),
        (5.0, "mwpm", 40000),
        (10.0, "mwpm", 80000),
    ):
        # One engine sweep per noise point: both distances share the
        # session compilation cache and (optionally) the worker pool.
        spec = SweepSpec(
            distances=(3, 5),
            capacities=(2,),
            gate_improvements=(improvement,),
            decoders=(decoder,),
            shots=shots,
            master_seed=MASTER_SEED,
        )
        points = [(r.distance, r.ler_per_round) for r in run_points(spec)]
        proj = fit_projection(points)
        fits[improvement] = proj
        target = proj.distance_for(1e-9)
        rows.append([
            f"{improvement:.0f}x",
            f"{points[0][1]:.2e}",
            f"{points[1][1]:.2e}",
            f"{proj.lam:.2f}",
            "unreachable" if target is None else target,
        ])
    text = benchmark(
        format_table,
        ["improvement", "p_L(3)/round", "p_L(5)/round", "Lambda", "d for 1e-9"],
        rows,
    )
    text += (
        "\n\npaper: 1e-9 needs d~13 at 10x or d~18 at 5x; 1x impractical"
        "\nmeasured: see the d-for-1e-9 column (Monte-Carlo noise at the"
        " lowest rates makes the 10x fit the most uncertain)"
    )
    publish("fig10_ler_projection", text)
    # 5x must show genuine sub-threshold suppression with a plausible
    # projected target distance.
    assert fits[5.0].below_threshold
    d5 = fits[5.0].distance_for(1e-9)
    assert d5 is not None and 9 <= d5 <= 40
    # More improvement means more suppression per distance step
    # (within Monte-Carlo noise; 10x may saturate on zero failures).
    assert fits[5.0].lam > 1.5


def test_fig10_capacity_comparison(benchmark):
    """Capacity 2 achieves lower LER than capacity 12 (5x scenario)."""
    small = ler_point(3, 2, 5.0, "standard", 8000, "mwpm")
    large = ler_point(3, 12, 5.0, "standard", 8000, "mwpm")
    text = benchmark(
        format_table,
        ["capacity", "LER/round", "failures"],
        [
            [2, f"{small.ler_per_round:.2e}", small.failures],
            [12, f"{large.ler_per_round:.2e}", large.failures],
        ],
    )
    text += (
        "\n\npaper: capacity 2 outperforms larger capacities by 1-2 orders"
        f"\nmeasured: {large.ler_per_round / small.ler_per_round:.1f}x lower"
        " LER at capacity 2"
    )
    publish("fig10_capacity_ler", text)
    assert small.ler_per_round < large.ler_per_round


def test_bench_ler_point_d3(benchmark):
    def run():
        ler_point.cache_clear()
        return ler_point(3, 2, 5.0, "standard", 500, "mwpm")

    benchmark.pedantic(run, rounds=1, iterations=1)
