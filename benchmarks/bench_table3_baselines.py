"""Table 3: our compiler vs QCCDSim-like and Muzzle-like baselines.

Paper claim: 3.85x average reduction in movement time and 1.91x in
movement operations versus the better of the two baselines per config
(best case 6.03x), with the baselines failing outright (NaN) on the
larger grid configurations.

"Ours" comes from compile-only engine sweeps (``_common.compile_records``
groups the Table-3 configs into :class:`SweepSpec` grids); the external
baselines have no engine equivalent and stay direct calls.
"""

import pytest

from repro.baselines import BaselineFailure, compile_muzzle_like, compile_qccdsim_like
from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.toolflow import format_table

from _common import compile_records, publish, smoke

ROUNDS = 5

# (code name, distance, capacity, topology) — the Table 3 grid, truncated
# to distances that keep the whole harness fast.
CONFIGS = [
    ("repetition", 3, 2, "linear"),
    ("repetition", 5, 2, "linear"),
    ("repetition", 7, 2, "linear"),
    ("repetition", 3, 3, "linear"),
    ("repetition", 5, 3, "linear"),
    ("repetition", 7, 5, "linear"),
    ("rotated_surface", 2, 2, "grid"),
    ("rotated_surface", 3, 2, "grid"),
    ("rotated_surface", 4, 2, "grid"),
    ("rotated_surface", 2, 3, "grid"),
    ("rotated_surface", 3, 3, "grid"),
    ("rotated_surface", 2, 5, "grid"),
    ("rotated_surface", 3, 5, "grid"),
]
if smoke():
    CONFIGS = [cfg for cfg in CONFIGS if cfg[1] <= 3 and cfg[2] == 2]


def _make_code(code_name, d):
    return RepetitionCode(d) if code_name == "repetition" else RotatedSurfaceCode(d)


def _run_baseline(fn, code, cap, topo):
    try:
        stats = fn(code, trap_capacity=cap, topology=topo, rounds=ROUNDS).stats
        return stats.movement_time_us, stats.movement_ops
    except BaselineFailure:
        return None, None


@pytest.fixture(scope="module")
def table3_rows():
    ours_by_code = {}
    for code_name in {cfg[0] for cfg in CONFIGS}:
        points = [(d, cap, topo) for cn, d, cap, topo in CONFIGS if cn == code_name]
        ours_by_code[code_name] = compile_records(code_name, points, rounds=ROUNDS)
    rows = []
    for code_name, d, cap, topo in CONFIGS:
        ours = ours_by_code[code_name][(d, cap, topo)]
        code = _make_code(code_name, d)
        q_time, q_ops = _run_baseline(compile_qccdsim_like, code, cap, topo)
        m_time, m_ops = _run_baseline(compile_muzzle_like, code, cap, topo)
        kind = "R" if code_name == "repetition" else "S"
        rows.append({
            "config": f"{kind},{d},{cap},{topo[0].upper()}",
            "ours_time": ours.movement_time_us,
            "qccdsim_time": q_time,
            "muzzle_time": m_time,
            "ours_ops": ours.movement_ops,
            "qccdsim_ops": q_ops,
            "muzzle_ops": m_ops,
        })
    return rows


def test_table3_report(benchmark, table3_rows):
    display = []
    time_ratios = []
    ops_ratios = []
    wins = 0
    contested = 0
    for r in table3_rows:
        best_time = min(
            (t for t in (r["qccdsim_time"], r["muzzle_time"]) if t is not None),
            default=None,
        )
        best_ops = min(
            (o for o in (r["qccdsim_ops"], r["muzzle_ops"]) if o is not None),
            default=None,
        )
        if best_time is not None and r["ours_time"] > 0:
            contested += 1
            time_ratios.append(best_time / r["ours_time"])
            ops_ratios.append(best_ops / max(r["ours_ops"], 1))
            if r["ours_time"] <= best_time:
                wins += 1
        display.append([
            r["config"], r["ours_time"], r["qccdsim_time"], r["muzzle_time"],
            r["ours_ops"], r["qccdsim_ops"], r["muzzle_ops"],
        ])
    text = benchmark(
        format_table,
        ["config", "ours us", "qccdsim us", "muzzle us",
         "ours ops", "qccdsim ops", "muzzle ops"],
        display,
    )
    avg_time = sum(time_ratios) / len(time_ratios)
    avg_ops = sum(ops_ratios) / len(ops_ratios)
    text += (
        f"\n\npaper: avg 3.85x movement-time and 1.91x movement-op reduction"
        f" vs best baseline; NaN = baseline failed"
        f"\nmeasured: avg {avg_time:.2f}x movement-time, {avg_ops:.2f}x"
        f" movement-op reduction; best case {max(time_ratios):.2f}x;"
        f" wins {wins}/{contested}"
    )
    publish("table3_baselines", text)
    if smoke():
        return  # reduction thresholds need the full config grid
    assert avg_time > 1.5  # we clearly beat the best baseline on average
    assert wins >= contested - 1


def test_bench_ours_surface_d3(benchmark):
    from repro.core import compile_memory_experiment

    benchmark(
        compile_memory_experiment, RotatedSurfaceCode(3), 2, "grid", rounds=ROUNDS
    )


def test_bench_qccdsim_surface_d3(benchmark):
    benchmark(
        compile_qccdsim_like, RotatedSurfaceCode(3), 2, "grid", rounds=ROUNDS
    )
