"""Extension: lattice-surgery merged patches (paper Sec. 8).

The paper argues its capacity-2 results extend to lattice surgery
because merged-patch parity rounds are structurally identical to
single-patch rounds.  We compile the merged (2d+1) x d patch of a
logical ZZ measurement through the same toolflow and verify the claim:
round time stays flat and per-check movement cost matches the square
patch.
"""

import pytest

from repro.codes import RotatedSurfaceCode, merged_patch
from repro.core import compile_memory_experiment, steady_round_time
from repro.toolflow import format_table

from _common import publish


@pytest.fixture(scope="module")
def surgery_rows():
    rows = []
    for d in (2, 3):
        square = RotatedSurfaceCode(d)
        merged = merged_patch(d)
        square_rt = steady_round_time(square, 2, "grid")
        merged_rt = steady_round_time(merged, 2, "grid")
        square_stats = compile_memory_experiment(square, 2, "grid", rounds=2).stats
        merged_stats = compile_memory_experiment(merged, 2, "grid", rounds=2).stats
        rows.append({
            "d": d,
            "square_rt": square_rt,
            "merged_rt": merged_rt,
            "square_move_per_check": square_stats.movement_ops / len(square.checks),
            "merged_move_per_check": merged_stats.movement_ops / len(merged.checks),
        })
    return rows


def test_surgery_report(benchmark, surgery_rows):
    display = [
        [r["d"], round(r["square_rt"], 0), round(r["merged_rt"], 0),
         round(r["merged_rt"] / r["square_rt"], 2),
         round(r["square_move_per_check"], 1),
         round(r["merged_move_per_check"], 1)]
        for r in surgery_rows
    ]
    text = benchmark(
        format_table,
        ["d", "square round us", "merged round us", "ratio",
         "square moves/check", "merged moves/check"],
        display,
    )
    text += (
        "\n\npaper (Sec. 8): lattice-surgery rounds are structurally the"
        " same as single-patch rounds, so the capacity-2 results carry"
        " over\nmeasured: a patch twice as wide costs about the same per"
        " round and per check"
    )
    publish("extension_surgery", text)
    # d=2 squares are so small that fixed overheads dominate the ratio;
    # the architectural claim is about codes at scale, so assert at the
    # largest distance benchmarked.
    at_scale = surgery_rows[-1]
    assert at_scale["merged_rt"] < 1.7 * at_scale["square_rt"]
    for r in surgery_rows:
        assert r["merged_move_per_check"] < 1.7 * r["square_move_per_check"]


def test_bench_surgery_compile(benchmark):
    benchmark(compile_memory_experiment, merged_patch(2), 2, "grid", rounds=2)
