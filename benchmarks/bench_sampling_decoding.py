"""Sampling + decoding fast-path microbenchmark (BENCH_sampling.json).

Measures, on the d=5 grid-topology memory design point (d=3 in smoke
mode), the two halves of the Monte-Carlo hot path:

- **sampling** — gate-by-gate :class:`FrameSimulator` replay vs the
  bit-packed DEM-direct :class:`DemSampler`;
- **decoding** — one MWPM decode per shot vs deduplicated batch
  decoding with the cross-shard syndrome memo;

and the **end-to-end** pipelines they compose (sample + decode +
failure count, i.e. what one engine shard does).  Results go to the
repo-root ``BENCH_sampling.json`` so the perf trajectory is recorded,
and to ``benchmarks/results/`` like every other benchmark table.

Assertions gate the fast path: in smoke mode it merely must not be
slower than the frame path; the full run enforces the acceptance
targets (>= 5x sampling, >= 3x end-to-end) at the paper's
5x-improvement design point, where the low-error-rate dedupe premise
holds.
"""

import json
import os
import time

import numpy as np

from repro.decoders import MwpmDecoder
from repro.engine import CompilationCache, SweepSpec
from repro.engine.runner import compile_design_point, plan_shards
from repro.noise.parameters import DEFAULT_NOISE
from repro.sim import DemSampler, FrameSimulator

from _common import MASTER_SEED, publish, smoke

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_sampling.json")
)


def _bench_point(distance: int, improvement: float, shard_shots: int,
                 num_shards: int) -> dict:
    """Run both pipelines over the same shard plan; return the numbers."""
    spec = SweepSpec(
        distances=(distance,),
        gate_improvements=(improvement,),
        shots=shard_shots * num_shards,
        master_seed=MASTER_SEED,
    )
    [job] = spec.expand()
    artifacts = compile_design_point(job, DEFAULT_NOISE, need_circuit=True)
    cache = CompilationCache()
    compiled = cache.compiled(artifacts.circuit, artifacts.text)
    dem_sampler = cache.dem_sampler(compiled)
    cache.distance_matrix(compiled)  # dijkstra priced into neither path
    frame_decoder = MwpmDecoder(compiled.graph)
    fast_decoder = MwpmDecoder(compiled.graph)
    shards = plan_shards(job.shots, shard_shots, spec.master_seed, job.key)

    t_frame_sample = t_naive_decode = 0.0
    t_dem_sample = t_dedup_decode = 0.0
    frame_failures = fast_failures = 0
    for shard in shards:
        t0 = time.perf_counter()
        sample = FrameSimulator(compiled.circuit, seed=shard.seed).sample(
            shard.shots
        )
        t1 = time.perf_counter()
        fails = frame_decoder.logical_failures(
            sample.detectors, sample.observables, dedupe=False
        )
        t2 = time.perf_counter()
        t_frame_sample += t1 - t0
        t_naive_decode += t2 - t1
        frame_failures += int(fails.sum())

        t0 = time.perf_counter()
        fast = dem_sampler.sample(shard.shots, seed=shard.seed)
        t1 = time.perf_counter()
        fails = fast_decoder.logical_failures(
            fast.detectors, fast.observables, dedupe=True
        )
        t2 = time.perf_counter()
        t_dem_sample += t1 - t0
        t_dedup_decode += t2 - t1
        fast_failures += int(fails.sum())

    shots = job.shots
    memo = fast_decoder.syndrome_memo()
    return {
        "gate_improvement": improvement,
        "distance": distance,
        "shots": shots,
        "shards": len(shards),
        "sampling": {
            "frame_shots_per_s": shots / t_frame_sample,
            "dem_shots_per_s": shots / t_dem_sample,
            "speedup": t_frame_sample / t_dem_sample,
        },
        "decoding": {
            "naive_decodes_per_s": shots / t_naive_decode,
            "dedup_decodes_per_s": shots / t_dedup_decode,
            "speedup": t_naive_decode / t_dedup_decode,
            "distinct_syndromes": len(memo),
            "memo_hits": memo.hits,
        },
        "end_to_end": {
            "frame_shots_per_s": shots / (t_frame_sample + t_naive_decode),
            "fastpath_shots_per_s": shots / (t_dem_sample + t_dedup_decode),
            "speedup": (t_frame_sample + t_naive_decode)
                       / (t_dem_sample + t_dedup_decode),
            "frame_failures": frame_failures,
            "fastpath_failures": fast_failures,
        },
    }


def test_sampling_decoding_fastpath():
    if smoke():
        # (improvement, shard_shots, num_shards)
        distance, grid = 3, ((5.0, 256, 2),)
    else:
        # The 1x point records the noisy-regime trajectory; the paper's
        # 5x design point carries the acceptance assertions and gets a
        # realistic multi-shard budget so the cross-shard syndrome memo
        # amortises the way a real LER job's does.
        distance, grid = 5, ((1.0, 1024, 2), (5.0, 2048, 16))

    points = [
        _bench_point(distance, improvement, shard_shots, num_shards)
        for improvement, shard_shots, num_shards in grid
    ]

    header = (
        f"{'improve':>7}  {'frame smp/s':>11}  {'dem smp/s':>11}  "
        f"{'smp x':>6}  {'naive dec/s':>11}  {'dedup dec/s':>11}  "
        f"{'e2e x':>6}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p['gate_improvement']:>7g}  "
            f"{p['sampling']['frame_shots_per_s']:>11.0f}  "
            f"{p['sampling']['dem_shots_per_s']:>11.0f}  "
            f"{p['sampling']['speedup']:>6.1f}  "
            f"{p['decoding']['naive_decodes_per_s']:>11.0f}  "
            f"{p['decoding']['dedup_decodes_per_s']:>11.0f}  "
            f"{p['end_to_end']['speedup']:>6.1f}"
        )
    mode = "smoke" if smoke() else "full"
    shots_summary = ", ".join(
        f"x{p['gate_improvement']:g}: {p['shots']}" for p in points
    )
    lines.append("")
    lines.append(
        f"mode: {mode}; d={distance}; grid topology; mwpm; "
        f"shots per point: {shots_summary}"
    )
    publish("bench_sampling_decoding", "\n".join(lines))

    payload = {
        "benchmark": "bench_sampling_decoding",
        "smoke": smoke(),
        "grid": {
            "code": "rotated_surface",
            "distance": distance,
            "topology": "grid",
            "decoder": "mwpm",
        },
        "points": points,
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # The fast path must never lose to the frame path, even on the
    # CI smoke grid.
    for p in points:
        assert p["sampling"]["speedup"] > 1.0, p
        assert p["end_to_end"]["speedup"] > 1.0, p
    if not smoke():
        # Acceptance targets at the paper's improved design point.
        quiet = max(points, key=lambda p: p["gate_improvement"])
        assert quiet["sampling"]["speedup"] >= 5.0, quiet["sampling"]
        assert quiet["end_to_end"]["speedup"] >= 3.0, quiet["end_to_end"]
