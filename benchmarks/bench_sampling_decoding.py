"""Sampling + decoding fast-path microbenchmark (BENCH_sampling.json).

Measures, on the d=5 grid-topology memory design point (d=3 in smoke
mode), the two halves of the Monte-Carlo hot path:

- **sampling** — gate-by-gate :class:`FrameSimulator` replay vs the
  bit-packed DEM-direct :class:`DemSampler`;
- **decoding** — one MWPM decode per shot vs packed-native
  deduplicated batch decoding with the cross-shard syndrome memo;

and the **end-to-end** pipelines they compose (sample + decode +
failure count, i.e. what one engine shard does).  The fast path is
**packed-native**: ``sample_packed`` words feed
``logical_failures_packed`` directly — no boolean matrix and no
pack/unpack round-trip anywhere between the sampler and the decoder
(recorded as ``packed_native`` in the payload).

A separate **near-threshold** point (1x gates — dedupe-hostile: most
syndromes distinct, so memoisation stops helping) pits the per-shot
scalar union-find against the batched vectorised kernel, asserting the
two produce identical corrections before timing them.  A matching
**batched-MWPM** point does the same for the MWPM decoder at a deep
below-threshold design point (20x gates — the regime LER sweeps
actually live in), per-shot scalar decode vs the packed
unique -> memo -> vectorised-kernel pipeline.

A **memo-share** point measures the cross-worker dedupe win: the same
shard plan decoded by a pool of per-process memos with and without
protocol-v3 memo sharding (deterministic in-process simulation built
on the real :class:`SyndromeMemo` share primitives, plus — in the full
run — a real two-process :class:`MultiprocessBackend` sweep).  Failure
counts must be identical across all variants; the shared pool's global
hit rate must beat the unshared pool's diluted rate.

The fast path runs under a scoped :class:`~repro.telemetry.Telemetry`
registry, so every point also records a per-phase wall-clock breakdown
(``sample.draw`` / ``sample.place`` / ``sample.xor`` / ``unique`` /
``memo`` / ``decode`` / ``scatter`` / ``other``) — the same phases the
engine attributes during sweeps.  The full run cross-checks the
attribution: phase totals must agree with the independently-measured
fast-path wall clock to within 5%.

Results go to the repo-root ``BENCH_sampling.json`` so the perf
trajectory is recorded, and to ``benchmarks/results/`` like every
other benchmark table.

Assertions gate the fast paths: in smoke mode they merely must not be
slower (CI fails on a batched union-find or batched MWPM regression)
and memo sharding must lift the pool's global hit rate; the full run
enforces the acceptance targets — >= 5x sampling and >= 3x end-to-end
at the paper's 5x-improvement design point, >= 3x batched union-find
decode throughput at the near-threshold point, >= 5x batched MWPM
decode throughput at the deep below-threshold point, and the live
multi-process dedupe win.
"""

import json
import os
import time

import numpy as np

from repro import telemetry
from repro.decoders import MwpmDecoder, UnionFindDecoder
from repro.engine import CompilationCache, SweepSpec
from repro.engine.progress import format_phase_share
from repro.engine.runner import (
    MultiprocessBackend,
    compile_design_point,
    ordered_phases,
    plan_shards,
    run_sweep,
)
from repro.noise.parameters import DEFAULT_NOISE
from repro.sim import DemSampler, FrameSimulator

from _common import MASTER_SEED, publish, smoke

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_sampling.json")
)


def _compiled_point(distance: int, improvement: float, shots: int,
                    decoder: str = "mwpm"):
    spec = SweepSpec(
        distances=(distance,),
        gate_improvements=(improvement,),
        decoders=(decoder,),
        shots=shots,
        master_seed=MASTER_SEED,
    )
    [job] = spec.expand()
    artifacts = compile_design_point(job, DEFAULT_NOISE, need_circuit=True)
    cache = CompilationCache()
    compiled = cache.compiled(artifacts.circuit, artifacts.text)
    return job, cache, compiled


def _bench_point(distance: int, improvement: float, shard_shots: int,
                 num_shards: int) -> dict:
    """Run both pipelines over the same shard plan; return the numbers."""
    job, cache, compiled = _compiled_point(
        distance, improvement, shard_shots * num_shards
    )
    dem_sampler = cache.dem_sampler(compiled)
    cache.distance_matrix(compiled)  # dijkstra priced into neither path
    frame_decoder = MwpmDecoder(compiled.graph)
    fast_decoder = MwpmDecoder(compiled.graph)
    shards = plan_shards(job.shots, shard_shots, MASTER_SEED, job.key)

    # Scoped telemetry registry: the fast path runs instrumented (the
    # same spans an engine shard records) without touching whatever
    # global configuration the caller has.
    tel = telemetry.Telemetry(enabled=True)
    previous = telemetry.get()

    t_frame_sample = t_naive_decode = 0.0
    t_dem_sample = t_dedup_decode = 0.0
    frame_failures = fast_failures = 0
    for shard in shards:
        t0 = time.perf_counter()
        sample = FrameSimulator(compiled.circuit, seed=shard.seed).sample(
            shard.shots
        )
        t1 = time.perf_counter()
        fails = frame_decoder.logical_failures(
            sample.detectors, sample.observables, dedupe=False
        )
        t2 = time.perf_counter()
        t_frame_sample += t1 - t0
        t_naive_decode += t2 - t1
        frame_failures += int(fails.sum())

        # Packed-native fast path: the uint64 words flow from the
        # sampler straight into the decoder, exactly like an engine
        # shard — no boolean matrices in between.  The root "shard"
        # span makes the exclusive phase times additive, so their sum
        # is the fast path's wall clock.
        telemetry.set_active(tel)
        try:
            with tel.span("shard"):
                t0 = time.perf_counter()
                with tel.span("sample"):
                    packed = dem_sampler.sample_packed(
                        shard.shots, seed=shard.seed
                    )
                t1 = time.perf_counter()
                fails = fast_decoder.logical_failures_packed(
                    packed.det_words, packed.obs_words, dedupe=True
                )
                t2 = time.perf_counter()
        finally:
            telemetry.set_active(previous)
        t_dem_sample += t1 - t0
        t_dedup_decode += t2 - t1
        fast_failures += int(fails.sum())

    shots = job.shots
    memo = fast_decoder.syndrome_memo()
    phases = tel.phase_totals()
    # Residue of the root span — time between the instrumented phases
    # (same accounting as the engine's per-shard "other").
    phases["other"] = phases.pop("shard", 0.0)
    t_fast = t_dem_sample + t_dedup_decode
    return {
        "gate_improvement": improvement,
        "distance": distance,
        "shots": shots,
        "shards": len(shards),
        "sampling": {
            "frame_shots_per_s": shots / t_frame_sample,
            "dem_shots_per_s": shots / t_dem_sample,
            "speedup": t_frame_sample / t_dem_sample,
        },
        "decoding": {
            "naive_decodes_per_s": shots / t_naive_decode,
            "dedup_decodes_per_s": shots / t_dedup_decode,
            "speedup": t_naive_decode / t_dedup_decode,
            "distinct_syndromes": len(memo),
            "memo_hits": memo.hits,
        },
        "end_to_end": {
            "frame_shots_per_s": shots / (t_frame_sample + t_naive_decode),
            "fastpath_shots_per_s": shots / (t_dem_sample + t_dedup_decode),
            "speedup": (t_frame_sample + t_naive_decode)
                       / (t_dem_sample + t_dedup_decode),
            "frame_failures": frame_failures,
            "fastpath_failures": fast_failures,
        },
        # Telemetry-attributed fast-path breakdown; coverage is the
        # phase-sum over the independently-timed wall clock (~1.0 when
        # the attribution machinery is honest).
        "phases": {name: phases[name] for name in ordered_phases(phases)},
        "phase_coverage": sum(phases.values()) / t_fast if t_fast else 0.0,
    }


def _bench_near_threshold(distance: int, improvement: float,
                          shots: int) -> dict:
    """Dedupe-hostile decoding point: scalar vs batched union-find.

    Near threshold almost every syndrome is distinct, so the memo and
    ``np.unique`` stop paying and raw per-syndrome decode cost rules.
    Corrections are asserted identical before anything is timed.
    """
    _, cache, compiled = _compiled_point(
        distance, improvement, shots, decoder="union_find"
    )
    sampler = cache.dem_sampler(compiled)
    packed = sampler.sample_packed(shots, seed=MASTER_SEED)
    detectors = packed.detectors  # boolean copy for the scalar reference

    scalar_uf = UnionFindDecoder(compiled.graph)
    batched_uf = UnionFindDecoder(compiled.graph)
    t0 = time.perf_counter()
    reference = scalar_uf.decode_batch(detectors, dedupe=False)
    t1 = time.perf_counter()
    batched = batched_uf.decode_packed_batch(packed.det_words)
    t2 = time.perf_counter()
    assert np.array_equal(reference, batched), (
        "batched union-find diverged from the scalar reference"
    )
    distinct = len(np.unique(packed.det_words, axis=0))
    return {
        "distance": distance,
        "gate_improvement": improvement,
        "decoder": "union_find",
        "shots": shots,
        "distinct_syndromes": int(distinct),
        "distinct_fraction": distinct / shots,
        "scalar_decodes_per_s": shots / (t1 - t0),
        "batched_decodes_per_s": shots / (t2 - t1),
        "speedup": (t1 - t0) / (t2 - t1),
    }


def _bench_mwpm_batched(distance: int, improvement: float,
                        shots: int) -> dict:
    """Deep below-threshold MWPM point: per-shot scalar decode vs the
    batched packed pipeline (unique -> memo -> vectorised kernels).

    This is the regime LER sweeps live in — sparse defect sets where
    the batched pair-enumeration / grouped-DP kernels replace the
    per-syndrome python matcher.  Corrections are asserted identical
    before anything is timed.
    """
    _, cache, compiled = _compiled_point(distance, improvement, shots)
    sampler = cache.dem_sampler(compiled)
    cache.distance_matrix(compiled)
    packed = sampler.sample_packed(shots, seed=MASTER_SEED)
    detectors = packed.detectors  # boolean copy for the scalar reference

    scalar = MwpmDecoder(compiled.graph)
    batched = MwpmDecoder(compiled.graph)
    t0 = time.perf_counter()
    reference = scalar.decode_batch(detectors, dedupe=False)
    t1 = time.perf_counter()
    fast = batched.decode_packed_batch(packed.det_words)
    t2 = time.perf_counter()
    assert np.array_equal(reference, fast), (
        "batched MWPM diverged from the scalar reference"
    )
    distinct = len(np.unique(packed.det_words, axis=0))
    return {
        "distance": distance,
        "gate_improvement": improvement,
        "decoder": "mwpm",
        "shots": shots,
        "distinct_syndromes": int(distinct),
        "distinct_fraction": distinct / shots,
        "scalar_decodes_per_s": shots / (t1 - t0),
        "batched_decodes_per_s": shots / (t2 - t1),
        "speedup": (t1 - t0) / (t2 - t1),
    }


def _bench_memo_share(distance: int, improvement: float, shard_shots: int,
                      num_shards: int, workers: int) -> dict:
    """Cross-worker dedupe point: the same shard plan round-robined over
    a pool of per-process memos, with and without protocol-v3 memo
    sharding.

    The pool is simulated in-process (deterministically — no scheduler
    races) on the real :class:`SyndromeMemo` share primitives: owned
    entries drain from each worker's outbox into an ordered driver
    segment, and the segment replicates to the other workers before
    their next shard, exactly the driver's piggyback protocol.  Gates
    compare the pool's *global* hit rate shared vs unshared; failure
    counts must be identical across single-worker, unshared-pool, and
    shared-pool runs.
    """
    job, cache, compiled = _compiled_point(
        distance, improvement, shard_shots * num_shards
    )
    sampler = cache.dem_sampler(compiled)
    cache.distance_matrix(compiled)
    shards = plan_shards(job.shots, shard_shots, MASTER_SEED, job.key)
    packed = [sampler.sample_packed(s.shots, seed=s.seed) for s in shards]

    def pool_run(n_workers: int, share: bool) -> dict:
        decoders = [MwpmDecoder(compiled.graph) for _ in range(n_workers)]
        if share:
            for slot, decoder in enumerate(decoders):
                decoder.syndrome_memo().enable_sharing(slot, n_workers)
        segment: list = []  # (key, mask, origin) in publish order
        known: set = set()
        cursors = [0] * n_workers
        failures = 0
        t0 = time.perf_counter()
        for index, shard in enumerate(packed):
            worker = index % n_workers
            memo = decoders[worker].syndrome_memo()
            if share and cursors[worker] < len(segment):
                entries = [
                    (key, mask)
                    for key, mask, origin in segment[cursors[worker]:]
                    if origin != worker
                ]
                cursors[worker] = len(segment)
                if entries:
                    memo.absorb(entries)
            fails = decoders[worker].logical_failures_packed(
                shard.det_words, shard.obs_words
            )
            failures += int(fails.sum())
            if share:
                for key, mask in memo.drain_outbox():
                    if key not in known:
                        known.add(key)
                        segment.append((key, mask, worker))
        elapsed = time.perf_counter() - t0
        hits = sum(d.syndrome_memo().hits for d in decoders)
        misses = sum(d.syndrome_memo().misses for d in decoders)
        shared = sum(d.syndrome_memo().shared_hits for d in decoders)
        return {
            "workers": n_workers,
            "failures": failures,
            "hits": hits,
            "misses": misses,
            "shared_hits": shared,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "decodes_per_s": job.shots / elapsed,
        }

    single = pool_run(1, share=False)
    unshared = pool_run(workers, share=False)
    shared = pool_run(workers, share=True)
    assert single["failures"] == unshared["failures"] == shared["failures"], (
        single["failures"], unshared["failures"], shared["failures"],
    )
    return {
        "distance": distance,
        "gate_improvement": improvement,
        "decoder": "mwpm",
        "shots": job.shots,
        "shard_shots": shard_shots,
        "num_shards": num_shards,
        "single_worker": single,
        "unshared": unshared,
        "shared": shared,
    }


def _bench_memo_share_mp(distance: int, improvement: float,
                         shard_shots: int, num_shards: int,
                         workers: int) -> dict:
    """Real multi-process check of the memo-share win: the same sweep
    through a live :class:`MultiprocessBackend` with sharding on vs
    off.  Scheduling (and therefore replication timing) is
    nondeterministic here, which is why the deterministic simulation
    above carries the smoke gate — but the hit-rate gap is large enough
    that the full run gates this end-to-end path too."""

    def sweep(share: bool) -> dict:
        spec = SweepSpec(
            distances=(distance,),
            gate_improvements=(improvement,),
            decoders=("mwpm",),
            shots=shard_shots * num_shards,
            master_seed=MASTER_SEED,
        )
        backend = MultiprocessBackend(workers, memo_share=share)
        t0 = time.perf_counter()
        try:
            [result] = run_sweep(spec, backend=backend,
                                 shard_shots=shard_shots)
        finally:
            backend.close()
        elapsed = time.perf_counter() - t0
        memo = result.extras["memo"]
        hits, misses = memo["hits"], memo["misses"]
        return {
            "failures": result.failures,
            "hits": hits,
            "misses": misses,
            "shared_hits": memo.get("shared_hits", 0),
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "elapsed_s": elapsed,
        }

    shared = sweep(True)
    unshared = sweep(False)
    assert shared["failures"] == unshared["failures"], (shared, unshared)
    return {
        "workers": workers,
        "shots": shard_shots * num_shards,
        "shard_shots": shard_shots,
        "shared": shared,
        "unshared": unshared,
    }


def test_sampling_decoding_fastpath():
    if smoke():
        # (improvement, shard_shots, num_shards)
        distance, grid = 3, ((5.0, 256, 2),)
        near = _bench_near_threshold(3, 1.0, 1024)
        mwpm_batched = _bench_mwpm_batched(3, 5.0, 4096)
        memo_share = _bench_memo_share(3, 5.0, 256, 8, workers=2)
    else:
        # The 1x point records the noisy-regime trajectory; the paper's
        # 5x design point carries the acceptance assertions and gets a
        # realistic multi-shard budget so the cross-shard syndrome memo
        # amortises the way a real LER job's does.
        distance, grid = 5, ((1.0, 1024, 2), (5.0, 2048, 16))
        near = _bench_near_threshold(5, 1.0, 4096)
        # Deep below threshold (x20): sparse defect sets, the regime
        # where batched MWPM's vectorised kernels pay the most.
        mwpm_batched = _bench_mwpm_batched(5, 20.0, 65536)
        memo_share = _bench_memo_share(5, 5.0, 2048, 16, workers=4)
        memo_share["multiprocess"] = _bench_memo_share_mp(
            5, 5.0, 1024, 16, workers=2
        )

    points = [
        _bench_point(distance, improvement, shard_shots, num_shards)
        for improvement, shard_shots, num_shards in grid
    ]

    header = (
        f"{'improve':>7}  {'frame smp/s':>11}  {'dem smp/s':>11}  "
        f"{'smp x':>6}  {'naive dec/s':>11}  {'dedup dec/s':>11}  "
        f"{'e2e x':>6}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p['gate_improvement']:>7g}  "
            f"{p['sampling']['frame_shots_per_s']:>11.0f}  "
            f"{p['sampling']['dem_shots_per_s']:>11.0f}  "
            f"{p['sampling']['speedup']:>6.1f}  "
            f"{p['decoding']['naive_decodes_per_s']:>11.0f}  "
            f"{p['decoding']['dedup_decodes_per_s']:>11.0f}  "
            f"{p['end_to_end']['speedup']:>6.1f}"
        )
    mode = "smoke" if smoke() else "full"
    shots_summary = ", ".join(
        f"x{p['gate_improvement']:g}: {p['shots']}" for p in points
    )
    lines.append("")
    lines.append(
        f"near-threshold union-find (d={near['distance']}, "
        f"x{near['gate_improvement']:g}, {near['shots']} shots, "
        f"{near['distinct_fraction']:.0%} distinct): "
        f"scalar {near['scalar_decodes_per_s']:.0f}/s -> batched "
        f"{near['batched_decodes_per_s']:.0f}/s "
        f"({near['speedup']:.1f}x)"
    )
    lines.append(
        f"batched mwpm (d={mwpm_batched['distance']}, "
        f"x{mwpm_batched['gate_improvement']:g}, "
        f"{mwpm_batched['shots']} shots, "
        f"{mwpm_batched['distinct_fraction']:.0%} distinct): "
        f"scalar {mwpm_batched['scalar_decodes_per_s']:.0f}/s -> batched "
        f"{mwpm_batched['batched_decodes_per_s']:.0f}/s "
        f"({mwpm_batched['speedup']:.1f}x)"
    )
    share_on = memo_share["shared"]
    share_off = memo_share["unshared"]
    lines.append(
        f"memo share ({share_on['workers']} workers, "
        f"{memo_share['num_shards']}x{memo_share['shard_shots']} shots): "
        f"global hit rate {share_off['hit_rate']:.1%} -> "
        f"{share_on['hit_rate']:.1%} "
        f"({share_on['shared_hits']} cross-worker hits; single-worker "
        f"{memo_share['single_worker']['hit_rate']:.1%})"
    )
    top = max(points, key=lambda p: p["gate_improvement"])
    lines.append(
        f"fast-path phases (x{top['gate_improvement']:g}, coverage "
        f"{top['phase_coverage']:.0%}): "
        + format_phase_share(top["phases"])
    )
    lines.append(
        f"mode: {mode}; d={distance}; grid topology; mwpm; "
        f"shots per point: {shots_summary}; packed-native fast path"
    )
    publish("bench_sampling_decoding", "\n".join(lines))

    payload = {
        "benchmark": "bench_sampling_decoding",
        "smoke": smoke(),
        "packed_native": True,  # sampler words -> decoder, no round-trip
        "grid": {
            "code": "rotated_surface",
            "distance": distance,
            "topology": "grid",
            "decoder": "mwpm",
        },
        "points": points,
        "near_threshold": near,
        "mwpm_batched": mwpm_batched,
        "memo_share": memo_share,
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # The fast paths must never lose to their reference paths, even on
    # the CI smoke grid (this is the batched union-find's regression
    # gate: slower than the scalar loop fails the build).
    for p in points:
        assert p["sampling"]["speedup"] > 1.0, p
        assert p["end_to_end"]["speedup"] > 1.0, p
        assert p["phases"], "telemetry recorded no fast-path phases"
    assert near["speedup"] > 1.0, near
    assert mwpm_batched["speedup"] > 1.0, mwpm_batched
    # Cross-worker dedupe gate: sharding must lift the pool's global
    # hit rate above the diluted per-process-memo rate (the whole point
    # of protocol-v3 memo sharding), with identical failure counts
    # (asserted inside the bench).
    assert (memo_share["shared"]["hit_rate"]
            > memo_share["unshared"]["hit_rate"]), memo_share
    assert memo_share["shared"]["shared_hits"] > 0, memo_share
    if not smoke():
        # Attribution honesty gate: the telemetry phase totals must
        # reconstruct the independently-measured fast-path wall clock
        # to within 5% (smoke shots are too few for stable clocks).
        for p in points:
            assert abs(p["phase_coverage"] - 1.0) <= 0.05, (
                p["gate_improvement"], p["phase_coverage"], p["phases"]
            )
        # Acceptance targets at the paper's improved design point and
        # the dedupe-hostile near-threshold point.
        quiet = max(points, key=lambda p: p["gate_improvement"])
        assert quiet["sampling"]["speedup"] >= 5.0, quiet["sampling"]
        assert quiet["end_to_end"]["speedup"] >= 3.0, quiet["end_to_end"]
        assert near["speedup"] >= 3.0, near
        # Batched MWPM acceptance: >= 5x decode throughput over the
        # per-shot scalar matcher at the deep below-threshold point.
        assert mwpm_batched["speedup"] >= 5.0, mwpm_batched
        # The live two-process pool must show the same dedupe win the
        # deterministic simulation gates above.
        mp = memo_share["multiprocess"]
        assert mp["shared"]["hit_rate"] > mp["unshared"]["hit_rate"], mp
