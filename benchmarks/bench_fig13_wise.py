"""Figure 13: WISE wiring vs standard wiring.

(a) Data rate: WISE's switch-network demultiplexing improves controller
data rate (and power) by over two orders of magnitude at comparable
logical error rates.

(b) Elapsed time: WISE's one-primitive-type-at-a-time restriction slows
the logical clock by large factors (up to ~25x near 1e-9 in the paper),
the power-vs-cycle-time trade-off of Sec. 7.4.
"""

import pytest

from repro.arch import STANDARD_WIRING, WISE_WIRING
from repro.codes import RotatedSurfaceCode
from repro.core import compile_memory_experiment
from repro.toolflow import format_table

from _common import device_for_distance, ler_point, publish


@pytest.fixture(scope="module")
def wiring_rows():
    rows = []
    for wiring, decoder in ((STANDARD_WIRING, "mwpm"), (WISE_WIRING, "mwpm")):
        for d in (3, 5):
            record = ler_point(d, 2, 5.0, wiring.name, 5000, decoder)
            device = device_for_distance(d, 2)
            res = wiring.resources(device)
            rows.append({
                "wiring": wiring.name,
                "d": d,
                "round_us": record.round_time_us,
                "ler": record.ler_per_round,
                "gbitps": res.data_rate_bitps / 1e9,
                "power_w": res.power_w,
            })
    return rows


def test_fig13a_data_rate(benchmark, wiring_rows):
    display = [
        [r["wiring"], r["d"], round(r["round_us"], 0),
         f"{r['ler']:.2e}", round(r["gbitps"], 2), round(r["power_w"], 1)]
        for r in wiring_rows
    ]
    text = benchmark(
        format_table, ["wiring", "d", "round us", "LER/round", "Gbit/s", "W"], display
    )
    std5 = next(r for r in wiring_rows if r["wiring"] == "standard" and r["d"] == 5)
    wise5 = next(r for r in wiring_rows if r["wiring"] == "wise" and r["d"] == 5)
    text += (
        "\n\npaper: WISE improves data rate by >2 orders of magnitude"
        f"\nmeasured: {std5['gbitps'] / wise5['gbitps']:.0f}x less"
        " controller bandwidth under WISE"
    )
    publish("fig13a_wise_data_rate", text)
    assert std5["gbitps"] / wise5["gbitps"] > 10
    # Cooled WISE gates keep the logical error rate in a usable range.
    assert wise5["ler"] < 0.1


def test_fig13b_elapsed_time(benchmark, wiring_rows):
    std = {r["d"]: r["round_us"] for r in wiring_rows if r["wiring"] == "standard"}
    wise = {r["d"]: r["round_us"] for r in wiring_rows if r["wiring"] == "wise"}
    rows = [
        [d, round(std[d], 0), round(wise[d], 0), round(wise[d] / std[d], 1)]
        for d in sorted(std)
    ]
    text = benchmark(
        format_table, ["d", "standard round us", "WISE round us", "slowdown"], rows
    )
    slowdowns = [wise[d] / std[d] for d in std]
    text += (
        "\n\npaper: WISE logical clocks up to ~25x slower near 1e-9;"
        " standard capacity-2 cycle time is distance-independent while"
        " WISE grows with distance"
        f"\nmeasured: slowdown {slowdowns[0]:.1f}x at d=3,"
        f" {slowdowns[-1]:.1f}x at d=5"
    )
    publish("fig13b_wise_elapsed", text)
    assert all(s > 3 for s in slowdowns)
    # WISE round time grows with distance (global serialisation).
    assert wise[5] > wise[3] * 1.3


def test_fig13b_elapsed_vs_target_ler(benchmark):
    """Elapsed logical-operation time as a function of the target LER.

    A logical operation takes d rounds of parity checks; the distance
    needed for a target LER comes from each wiring's suppression fit,
    and the round time from compiled schedules (WISE round times grow
    with d, standard capacity-2 stays flat).  The paper reports ~1.17x
    elapsed per 10x of target LER for WISE.
    """
    import math

    from repro.ler import fit_projection

    # Suppression fits per wiring (5x improvement).
    fits = {}
    for wiring in ("standard", "wise"):
        points = []
        for d in (3, 5):
            record = ler_point(d, 2, 5.0, wiring, 5000, "mwpm")
            points.append((d, record.ler_per_round))
        fits[wiring] = fit_projection(points)

    # Round time versus distance, linear fit from compiled schedules.
    round_us = {}
    for wiring_method in (STANDARD_WIRING, WISE_WIRING):
        samples = {}
        for d in (3, 5):
            program = compile_memory_experiment(
                RotatedSurfaceCode(d), 2, "grid", wiring_method, rounds=2
            )
            samples[d] = program.stats.round_time_us
        slope = (samples[5] - samples[3]) / 2.0
        round_us[wiring_method.name] = lambda d, s=samples, m=slope: (
            s[3] + m * (d - 3)
        )

    rows = []
    elapsed_by_target = {}
    for target in (1e-6, 1e-7, 1e-8, 1e-9):
        row = [f"{target:g}"]
        for wiring in ("standard", "wise"):
            d = fits[wiring].distance_for(target)
            if d is None:
                row += ["-", "-"]
                continue
            elapsed = d * round_us[wiring](d)
            elapsed_by_target.setdefault(wiring, []).append(elapsed)
            row += [d, round(elapsed / 1e3, 1)]
        rows.append(row)
    text = benchmark(
        format_table,
        ["target LER", "std d", "std ms/op", "wise d", "wise ms/op"],
        rows,
    )
    ratios = []
    wise_elapsed = elapsed_by_target.get("wise", [])
    for a, b in zip(wise_elapsed, wise_elapsed[1:]):
        ratios.append(b / a)
    if ratios:
        geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        text += (
            "\n\npaper: WISE elapsed grows ~1.17x per 10x of target LER"
            f"\nmeasured: {geo:.2f}x per decade"
        )
        publish("fig13b_elapsed_vs_target", text)
        assert 1.0 < geo < 2.0
    else:
        publish("fig13b_elapsed_vs_target", text)
        raise AssertionError("WISE fit failed to reach any target")


def test_wise_round_time_scales_with_distance(benchmark):
    benchmark(lambda: None)
    """Standard stays flat; WISE inherits the O(d^2) primitive count."""
    times = {}
    for d in (3, 5):
        program = compile_memory_experiment(
            RotatedSurfaceCode(d), 2, "grid", WISE_WIRING, rounds=2
        )
        times[d] = program.stats.round_time_us
    assert times[5] > 1.5 * times[3]


def test_bench_wise_compile(benchmark):
    benchmark(
        compile_memory_experiment,
        RotatedSurfaceCode(3),
        2,
        "grid",
        WISE_WIRING,
        rounds=2,
    )
