"""Compile-throughput benchmark over the strategy grid.

The strategy layer (PR 7) turned the compiler's routing and placement
policies into first-class sweep axes; this benchmark grids

    (router x placer) x topology x distance

through direct ``QccdCompiler`` invocations, timing each compile, and
records makespan / op-count / movement ops / compile-seconds /
compile throughput (ops per second of compile time) per strategy into
``BENCH_compile.json`` at the repo root — the per-strategy numbers the
README's strategy-comparison table cites, and CI's regression gate that
every registered strategy still completes the grid.

``--smoke`` (or ``REPRO_BENCH_SMOKE=1``) shrinks the grid to d=3 over
two topologies; the full grid adds d=5 and the linear topology.
"""

import json
import os
import time

from repro.codes import RotatedSurfaceCode
from repro.core import (
    CompilerConfig,
    QccdCompiler,
    available_placers,
    available_routers,
)

from _common import publish, smoke

BENCH_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_compile.json")
)

# Strategies that existed before the strategy layer: the baseline row
# every other strategy is compared against.
BASELINE = ("greedy", "projection")


def _grid():
    if smoke():
        return (3,), ("grid", "switch")
    return (3, 5), ("grid", "linear", "switch")


def _compile_point(distance, topology, router, placer):
    cfg = CompilerConfig(
        code=RotatedSurfaceCode(distance),
        topology=topology,
        rounds=2,
        router=router,
        placer=placer,
    )
    t0 = time.perf_counter()
    program = QccdCompiler(cfg).compile()
    compile_s = time.perf_counter() - t0
    return {
        "distance": distance,
        "topology": topology,
        "router": router,
        "placer": placer,
        "makespan_us": program.stats.makespan_us,
        "num_ops": len(program.ops),
        "movement_ops": program.stats.movement_ops,
        "gate_swaps": program.stats.gate_swaps,
        "compile_s": round(compile_s, 4),
        "ops_per_compile_s": round(len(program.ops) / compile_s, 1),
    }


def test_compile_throughput():
    distances, topologies = _grid()
    routers = available_routers()
    placers = available_placers()

    points = []
    for distance in distances:
        for topology in topologies:
            for router in routers:
                for placer in placers:
                    points.append(
                        _compile_point(distance, topology, router, placer)
                    )

    baseline = {
        (p["distance"], p["topology"]): p
        for p in points
        if (p["router"], p["placer"]) == BASELINE
    }
    header = (
        f"{'d':>2} {'topo':6} {'router':8} {'placer':10} "
        f"{'makespan_us':>11} {'ops':>5} {'moves':>5} "
        f"{'compile_s':>9} {'ops/s':>8} {'vs greedy':>9}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        base = baseline[(p["distance"], p["topology"])]
        rel = p["makespan_us"] / base["makespan_us"]
        lines.append(
            f"{p['distance']:>2} {p['topology']:6} {p['router']:8} "
            f"{p['placer']:10} {p['makespan_us']:>11,.0f} {p['num_ops']:>5} "
            f"{p['movement_ops']:>5} {p['compile_s']:>9.3f} "
            f"{p['ops_per_compile_s']:>8,.0f} {rel:>8.2f}x"
        )
    publish("bench_compile_throughput", "\n".join(lines))

    payload = {
        "benchmark": "bench_compile_throughput",
        "smoke": smoke(),
        "grid": {
            "code": "rotated_surface",
            "distances": list(distances),
            "topologies": list(topologies),
            "routers": list(routers),
            "placers": list(placers),
            "rounds": 2,
        },
        "points": points,
    }
    with open(BENCH_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    # Regression gates: every registered strategy covers the whole
    # grid, produces a non-trivial program, and no strategy collapses
    # (an alternative policy may trade makespan for parallelism or
    # batching, but a blow-up past 3x the baseline means it stopped
    # routing sensibly).
    assert len(points) == (
        len(distances) * len(topologies) * len(routers) * len(placers)
    )
    for p in points:
        assert p["num_ops"] > 0 and p["makespan_us"] > 0, p
        base = baseline[(p["distance"], p["topology"])]
        assert p["makespan_us"] <= 3.0 * base["makespan_us"], p
    # The strategy axes the paper's toolflow gained in PR 7 must be
    # present in the artifact.
    assert {"layered", "parallel"} <= set(routers)
    assert "window" in set(placers)
