"""Substrate validation: the simulation + decoding stack behaves like
the literature says it must.

Not a paper table per se, but the foundation every figure rests on: the
rotated surface code decoded with MWPM under circuit-level depolarising
noise must show a threshold in the sub-percent range and exponential
suppression below it.  If this bench regresses, none of the LER figures
can be trusted.
"""

import pytest

from repro.codes import RotatedSurfaceCode
from repro.ler import scan_threshold
from repro.toolflow import format_table

from _common import publish


@pytest.fixture(scope="module")
def scan():
    return scan_threshold(
        RotatedSurfaceCode,
        distances=(3, 5),
        physical_rates=(2e-3, 4e-3, 8e-3, 2.5e-2),
        rounds=3,
        shots=5000,
        seed=17,
    )


def test_threshold_report(benchmark, scan):
    rows = []
    for p in scan.physical_rates:
        rows.append([
            f"{p:g}",
            f"{scan.ler(3, p):.2e}",
            f"{scan.ler(5, p):.2e}",
            round(scan.suppression_at(p), 2),
        ])
    text = benchmark(
        format_table,
        ["physical p", "p_L(d=3)", "p_L(d=5)", "suppression d3/d5"],
        rows,
    )
    threshold = scan.threshold_estimate()
    text += (
        "\n\nliterature: circuit-level depolarising threshold ~0.5-1%"
        f"\nmeasured: crossing at p ~ {threshold:.2%}"
        if threshold is not None
        else "\n\nno crossing found in the sampled range"
    )
    publish("substrate_threshold", text)
    assert threshold is not None
    assert 1e-3 < threshold < 2.5e-2
    # Deep below threshold the larger code clearly wins.
    assert scan.suppression_at(2e-3) > 1.0


def test_bench_threshold_point(benchmark):
    from repro.codes import UniformNoise, ideal_memory_circuit
    from repro.ler import estimate_logical_error_rate

    circuit = ideal_memory_circuit(
        RotatedSurfaceCode(3), rounds=3, noise=UniformNoise(5e-3)
    )
    benchmark.pedantic(
        estimate_logical_error_rate,
        args=(circuit,),
        kwargs={"rounds": 3, "shots": 500, "seed": 3},
        rounds=1,
        iterations=1,
    )
