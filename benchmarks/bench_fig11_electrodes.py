"""Figure 11: electrodes required to hit a target LER, per capacity.

Paper claims: under standard wiring at a 5x gate improvement, capacity
2 is the most *hardware-efficient* design point — although small traps
need more junctions per qubit, larger traps need much bigger code
distances for the same logical error rate, which dominates the
electrode bill.

Each capacity's suppression fit is one engine sweep over the distance
axis (``_common.ler_projection`` builds the :class:`SweepSpec`); the
electrode counts at the projected target distances stay a placement /
resource-model lookup — those distances (up to d~49) are far beyond
what a full compile can reach.
"""

import pytest

from repro.arch import standard_resources
from repro.toolflow import format_table

from _common import capacity_projection, device_for_distance, publish, smoke

TARGETS = (1e-6, 1e-9)
CAPACITIES = (2, 5) if smoke() else (2, 5, 12)


@pytest.fixture(scope="module")
def electrode_table():
    table = {}
    for cap in CAPACITIES:
        proj = capacity_projection(cap)
        for target in TARGETS:
            d = proj.distance_for(target)
            if d is None:
                table[(cap, target)] = (None, None)
                continue
            d = min(d, 49)  # keep device construction tractable
            device = device_for_distance(d, cap)
            res = standard_resources(device)
            table[(cap, target)] = (d, res.electrodes)
    return table


def test_fig11_report(benchmark, electrode_table):
    rows = []
    for cap in CAPACITIES:
        row = [cap]
        for target in TARGETS:
            d, electrodes = electrode_table[(cap, target)]
            row.append("unreachable" if d is None else d)
            row.append("-" if electrodes is None else electrodes)
        rows.append(row)
    headers = ["capacity"]
    for target in TARGETS:
        headers += [f"d @ {target:g}", f"electrodes @ {target:g}"]
    text = benchmark(format_table, headers, rows)
    text += (
        "\n\npaper: capacity 2 needs orders of magnitude fewer electrodes"
        " at a given target LER\nmeasured: compare the electrode columns"
        " across capacities"
    )
    publish("fig11_electrodes", text)
    if smoke():
        return  # comparison thresholds need the full-shot projections
    # Capacity 2 must reach both targets and do so at least as cheaply
    # as any larger capacity that reaches them.
    for target in TARGETS:
        d2, e2 = electrode_table[(2, target)]
        assert d2 is not None
        for cap in CAPACITIES[1:]:
            d_large, e_large = electrode_table[(cap, target)]
            if e_large is not None:
                assert e2 <= e_large * 1.2, (cap, target)


def test_electrode_count_scales_quadratically_with_distance(benchmark):
    benchmark(device_for_distance, 3, 2)
    small = standard_resources(device_for_distance(3, 2)).electrodes
    large = standard_resources(device_for_distance(9, 2)).electrodes
    # Physical qubits scale as 2d^2-1: expect roughly (2*81)/(2*9) ~ 9x.
    assert 5 < large / small < 14


def test_bench_resource_estimation(benchmark):
    benchmark(
        lambda: standard_resources(device_for_distance(9, 2)).electrodes
    )
