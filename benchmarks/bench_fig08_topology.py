"""Figure 8: communication topology comparison at capacity 2.

(a) QEC round time vs code distance for linear / grid / switch.
Paper claims: linear is an order of magnitude slower (~12x at d=5) due
to routing congestion; grid and switch are comparable; only capacity 2
gives distance-independent round times.

(b) Logical error rate, grid vs switch: statistically indistinguishable.
"""

import pytest

from repro.codes import RotatedSurfaceCode
from repro.core import steady_round_time
from repro.engine import SweepSpec
from repro.toolflow import format_table

from _common import MASTER_SEED, publish, run_points

DISTANCES = (3, 5, 7)


@pytest.fixture(scope="module")
def round_times():
    table = {}
    for topo in ("grid", "switch", "linear"):
        ds = DISTANCES if topo != "linear" else DISTANCES[:2]
        for d in ds:
            table[(topo, d)] = steady_round_time(
                RotatedSurfaceCode(d), trap_capacity=2, topology=topo
            )
    return table


def test_fig08a_report(benchmark, round_times):
    rows = []
    for topo in ("grid", "switch", "linear"):
        row = [topo]
        for d in DISTANCES:
            value = round_times.get((topo, d))
            row.append(None if value is None else round(value, 0))
        rows.append(row)
    text = benchmark(
        format_table, ["topology"] + [f"d={d} round us" for d in DISTANCES], rows
    )
    ratio = round_times[("linear", 5)] / round_times[("grid", 5)]
    text += (
        f"\n\npaper: linear ~12x slower than grid at d=5; grid ~ switch"
        f"\nmeasured: linear/grid = {ratio:.1f}x at d=5; "
        f"switch/grid = {round_times[('switch', 5)] / round_times[('grid', 5)]:.2f}x"
    )
    publish("fig08a_topology_round_time", text)
    assert ratio > 4  # linear congestion dominates
    grid = [round_times[("grid", d)] for d in DISTANCES]
    assert max(grid) / min(grid) < 1.6  # constant-ish in distance


def test_fig08b_grid_vs_switch_ler(benchmark):
    spec = SweepSpec(
        distances=(3,),
        capacities=(2,),
        topologies=("grid", "switch"),
        gate_improvements=(5.0,),
        shots=4000,
        master_seed=MASTER_SEED,
    )
    rows = []
    rates = {}
    for record in run_points(spec):
        rates[record.topology] = record.ler_per_round
        rows.append([record.topology, f"{record.ler_per_round:.2e}", record.failures])
    text = benchmark(format_table, ["topology", "LER/round", "failures"], rows)
    text += (
        "\n\npaper: grid and switch LER differences are statistically"
        " inconclusive\nmeasured: same order of magnitude "
        f"(ratio {max(rates.values()) / max(min(rates.values()), 1e-12):.1f}x)"
    )
    publish("fig08b_topology_ler", text)
    assert rates["grid"] < 20 * rates["switch"]
    assert rates["switch"] < 20 * rates["grid"]


def test_bench_steady_round_time_grid(benchmark):
    benchmark(steady_round_time, RotatedSurfaceCode(3), 2, "grid")
