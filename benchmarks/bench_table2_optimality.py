"""Table 2: compiler vs hand-optimised (theoretical minimum) schedules.

Paper claim: the compiler matches the expert mapping in most
configurations and is within 1.11x in the worst case (avg 1.09x of the
non-matching cases); routing-operation counts are within ~1.04x.
Our optima are derived in core.optimal under the identical timing
model, so the ratios are directly comparable.

The measured side of every configuration comes from compile-only
engine sweeps (``_common.compile_records`` at two probe round counts:
the makespan slope gives the steady-state round time, the higher probe
doubles as the movement-op count); the optima stay analytic.
"""

import pytest

from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.core import optimal_estimate, single_chain_round_time
from repro.toolflow import format_table

from _common import compile_records, publish, smoke

MOVES_ROUNDS = 4

# (name, code kind, distance, capacity, topology); capacity None means
# a single ion chain (all qubits plus one spare in one trap).
CONFIGS = [
    ("repetition d=3", "repetition", 3, 2, "linear"),
    ("repetition d=6", "repetition", 6, 2, "linear"),
    ("repetition d=3 chain", "repetition", 3, None, "linear"),
    ("repetition d=6 chain", "repetition", 6, None, "linear"),
    ("rotated d=3", "rotated_surface", 3, 2, "grid"),
    ("rotated d=4", "rotated_surface", 4, 2, "grid"),
    ("rotated d=3 switch", "rotated_surface", 3, 2, "switch"),
]
if smoke():
    CONFIGS = [cfg for cfg in CONFIGS if "d=6" not in cfg[0] and "d=4" not in cfg[0]]


def _make_code(code_name, d):
    return RepetitionCode(d) if code_name == "repetition" else RotatedSurfaceCode(d)


def _chain_capacity(code_name, d):
    return _make_code(code_name, d).num_qubits + 1


def _grouped_configs():
    """The engine grid: (code_name, distance, capacity, topology) per
    config, with chain configs resolved to their single-trap capacity."""
    resolved = []
    for name, code_name, d, capacity, topology in CONFIGS:
        if capacity is None:
            capacity = _chain_capacity(code_name, d)
        resolved.append((name, code_name, d, capacity, topology))
    return resolved


@pytest.fixture(scope="module")
def table2_rows():
    resolved = _grouped_configs()
    # One engine pass per code family: the probe-rounds grids are
    # grouped exactly like compile_records groups them, so the
    # MOVES_ROUNDS compile is shared between the makespan slope and the
    # movement-op counts — each config compiles exactly twice.
    r1, r2 = 2, MOVES_ROUNDS
    times = {}
    moves = {}
    for code_name in {cfg[1] for cfg in resolved}:
        points = [
            (d, cap, topo) for _, cn, d, cap, topo in resolved if cn == code_name
        ]
        first = compile_records(code_name, points, rounds=r1)
        second = compile_records(code_name, points, rounds=r2)
        for d, cap, topo in points:
            times[(code_name, d, cap, topo)] = (
                second[(d, cap, topo)].makespan_us - first[(d, cap, topo)].makespan_us
            ) / (r2 - r1)
            moves[(code_name, d, cap, topo)] = (
                second[(d, cap, topo)].movement_ops / MOVES_ROUNDS
            )
    rows = []
    for name, code_name, d, capacity, topology in resolved:
        code = _make_code(code_name, d)
        chain = "chain" in name
        if chain:
            optimal_time = single_chain_round_time(code)
            optimal_moves = 0.0
            measured_moves = 0.0
        else:
            est = optimal_estimate(
                code, "grid" if topology == "switch" else topology, capacity
            )
            optimal_time = est.round_time_us
            optimal_moves = est.movement_ops_per_round
            measured_moves = moves[(code_name, d, capacity, topology)]
        measured_time = times[(code_name, d, capacity, topology)]
        rows.append({
            "config": name,
            "optimal_us": round(optimal_time, 0),
            "measured_us": round(measured_time, 0),
            "time_ratio": round(measured_time / optimal_time, 2),
            "optimal_moves": round(optimal_moves, 0),
            "measured_moves": round(measured_moves, 0),
        })
    return rows


def test_table2_report(benchmark, table2_rows):
    text = benchmark(
        format_table,
        ["config", "optimal us", "measured us", "ratio",
         "optimal moves", "measured moves"],
        [[r["config"], r["optimal_us"], r["measured_us"], r["time_ratio"],
          r["optimal_moves"], r["measured_moves"]] for r in table2_rows],
    )
    ratios = [r["time_ratio"] for r in table2_rows]
    text += (
        f"\n\npaper: compiler within 1.11x (worst case) of expert schedules"
        f"\nmeasured: worst ratio {max(ratios):.2f}x, "
        f"mean {sum(ratios) / len(ratios):.2f}x"
    )
    publish("table2_optimality", text)
    # Single-chain configurations must be matched exactly.
    for row in table2_rows:
        if "chain" in row["config"]:
            assert row["time_ratio"] == pytest.approx(1.0, abs=0.01)
    # Every config stays within an engineering band of the optimum.
    assert max(ratios) < 4.5


def test_bench_compile_rotated_d3_cap2(benchmark):
    from repro.core import compile_memory_experiment

    benchmark(
        compile_memory_experiment,
        RotatedSurfaceCode(3),
        2,
        "grid",
        rounds=2,
    )


def test_bench_compile_repetition_d6_cap2(benchmark):
    from repro.core import compile_memory_experiment

    benchmark(
        compile_memory_experiment,
        RepetitionCode(6),
        2,
        "linear",
        rounds=2,
    )
