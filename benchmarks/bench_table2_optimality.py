"""Table 2: compiler vs hand-optimised (theoretical minimum) schedules.

Paper claim: the compiler matches the expert mapping in most
configurations and is within 1.11x in the worst case (avg 1.09x of the
non-matching cases); routing-operation counts are within ~1.04x.
Our optima are derived in core.optimal under the identical timing
model, so the ratios are directly comparable.
"""

import pytest

from repro.codes import RepetitionCode, RotatedSurfaceCode
from repro.core import (
    compile_memory_experiment,
    optimal_estimate,
    single_chain_round_time,
    steady_round_time,
)
from repro.toolflow import format_table

from _common import publish

CONFIGS = [
    ("repetition d=3", RepetitionCode(3), "linear", 2),
    ("repetition d=6", RepetitionCode(6), "linear", 2),
    ("repetition d=3 chain", RepetitionCode(3), "linear", None),
    ("repetition d=6 chain", RepetitionCode(6), "linear", None),
    ("rotated d=3", RotatedSurfaceCode(3), "grid", 2),
    ("rotated d=4", RotatedSurfaceCode(4), "grid", 2),
    ("rotated d=3 switch", RotatedSurfaceCode(3), "switch", 2),
]


def _evaluate_config(name, code, topology, capacity):
    if capacity is None:  # single ion chain
        optimal_time = single_chain_round_time(code)
        optimal_moves = 0.0
        measured_time = steady_round_time(code, code.num_qubits + 1, "linear")
        measured_moves = 0.0
    else:
        est = optimal_estimate(
            code, "grid" if topology == "switch" else topology, capacity
        )
        optimal_time = est.round_time_us
        optimal_moves = est.movement_ops_per_round
        measured_time = steady_round_time(code, capacity, topology)
        rounds = 4
        program = compile_memory_experiment(
            code, capacity, topology, rounds=rounds
        )
        measured_moves = program.stats.movement_ops / rounds
    return {
        "config": name,
        "optimal_us": round(optimal_time, 0),
        "measured_us": round(measured_time, 0),
        "time_ratio": round(measured_time / optimal_time, 2),
        "optimal_moves": round(optimal_moves, 0),
        "measured_moves": round(measured_moves, 0),
    }


@pytest.fixture(scope="module")
def table2_rows():
    return [_evaluate_config(*cfg) for cfg in CONFIGS]


def test_table2_report(benchmark, table2_rows):
    text = benchmark(
        format_table,
        ["config", "optimal us", "measured us", "ratio",
         "optimal moves", "measured moves"],
        [[r["config"], r["optimal_us"], r["measured_us"], r["time_ratio"],
          r["optimal_moves"], r["measured_moves"]] for r in table2_rows],
    )
    ratios = [r["time_ratio"] for r in table2_rows]
    text += (
        f"\n\npaper: compiler within 1.11x (worst case) of expert schedules"
        f"\nmeasured: worst ratio {max(ratios):.2f}x, "
        f"mean {sum(ratios) / len(ratios):.2f}x"
    )
    publish("table2_optimality", text)
    # Single-chain configurations must be matched exactly.
    for row in table2_rows:
        if "chain" in row["config"]:
            assert row["time_ratio"] == pytest.approx(1.0, abs=0.01)
    # Every config stays within an engineering band of the optimum.
    assert max(ratios) < 4.5


def test_bench_compile_rotated_d3_cap2(benchmark):
    benchmark(
        compile_memory_experiment,
        RotatedSurfaceCode(3),
        2,
        "grid",
        rounds=2,
    )


def test_bench_compile_repetition_d6_cap2(benchmark):
    benchmark(
        compile_memory_experiment,
        RepetitionCode(6),
        2,
        "linear",
        rounds=2,
    )
