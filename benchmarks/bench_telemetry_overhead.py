"""Telemetry overhead microbenchmark (the "cheap enough" gate).

The observability layer is only allowed to exist because it costs
nothing when off and almost nothing when on.  This benchmark enforces
both halves of that claim:

- **disabled span cost** — ``span()`` on a disabled registry returns a
  shared no-op singleton; the per-call cost must stay in the
  sub-microsecond range (gated loosely at 5 µs/call so CI noise cannot
  fail the build, while a real regression — say an allocation per call
  — still trips it);
- **instrumented shard overhead** — an engine shard (DEM-direct
  sampling + dedup decoding, the real hot loop) is timed with
  telemetry fully on (spans + trace buffering) and fully off;
  min-of-N wall clocks must agree within the gate (15% smoke / 10%
  full — the shard does real numpy work, so honest span accounting
  disappears into it);
- **determinism** — the on/off shard runs must produce bit-identical
  failure counts (telemetry must never perturb results).

Results publish to ``benchmarks/results/bench_telemetry_overhead.txt``
like every other benchmark table.
"""

import time

from repro import telemetry
from repro.engine import CompilationCache, SweepSpec
from repro.engine.runner import Shard, compile_design_point, sample_shard
from repro.noise.parameters import DEFAULT_NOISE

from _common import MASTER_SEED, publish, smoke

SPAN_CALLS = 50_000
DISABLED_SPAN_GATE_US = 5.0


def _shard_runner(distance: int = 3, shots: int = 2048):
    """One engine shard's worth of work as a zero-argument callable."""
    spec = SweepSpec(
        distances=(distance,),
        gate_improvements=(5.0,),
        shots=shots,
        master_seed=MASTER_SEED,
    )
    [job] = spec.expand()
    artifacts = compile_design_point(job, DEFAULT_NOISE, need_circuit=True)
    cache = CompilationCache()
    compiled = cache.compiled(artifacts.circuit, artifacts.text)
    decoder = cache.decoder(compiled, job.decoder)
    sampler = cache.dem_sampler(compiled)
    shard = Shard(0, shots, MASTER_SEED)

    def run():
        failures, _memo, _phases = sample_shard(
            compiled.circuit, decoder, shard, sampler=sampler
        )
        return failures

    return run


def _min_time(fn, repeats: int) -> tuple[float, object]:
    """Min-of-N wall clock (robust against scheduler noise)."""
    best, value = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_telemetry_overhead():
    # --- disabled no-op path: per-call cost of `with span(...):` ------
    disabled = telemetry.Telemetry(enabled=False)
    t0 = time.perf_counter()
    for _ in range(SPAN_CALLS):
        with disabled.span("noop"):
            pass
    disabled_us = (time.perf_counter() - t0) / SPAN_CALLS * 1e6

    # --- instrumented vs uninstrumented engine shard ------------------
    run = _shard_runner(shots=1024 if smoke() else 4096)
    repeats = 3 if smoke() else 5
    previous = telemetry.get()

    off = telemetry.Telemetry(enabled=False)
    on = telemetry.Telemetry(enabled=True, trace=True)
    try:
        telemetry.set_active(off)
        run()  # warm every lazy cache before anything is timed
        t_off, failures_off = _min_time(run, repeats)
        telemetry.set_active(on)
        run()
        t_on, failures_on = _min_time(run, repeats)
    finally:
        telemetry.set_active(previous)

    overhead = t_on / t_off - 1.0
    gate = 0.15 if smoke() else 0.10
    spans = len(on.events())

    publish("bench_telemetry_overhead", "\n".join([
        f"disabled span: {disabled_us:.3f} us/call "
        f"(gate {DISABLED_SPAN_GATE_US:.1f} us)",
        f"shard wall clock: off {t_off * 1e3:.2f} ms, on {t_on * 1e3:.2f} ms "
        f"(min of {repeats}) -> overhead {overhead:+.1%} (gate {gate:.0%})",
        f"trace events buffered while on: {spans}",
        f"failures: off {failures_off}, on {failures_on} (must match)",
        f"mode: {'smoke' if smoke() else 'full'}",
    ]))

    assert failures_on == failures_off, (
        "telemetry perturbed the physics: "
        f"off={failures_off} on={failures_on}"
    )
    assert disabled_us < DISABLED_SPAN_GATE_US, disabled_us
    assert overhead < gate, (t_off, t_on, overhead)
