"""Benchmark harness configuration: make _common importable, --smoke mode."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="CI smoke mode: shrunken benchmark grids, trend assertions "
             "that need the full grid are skipped",
    )


def pytest_configure(config):
    # Propagated through the environment so _common (and its worker
    # processes) see the flag regardless of import order.
    if config.getoption("--smoke"):
        os.environ["REPRO_BENCH_SMOKE"] = "1"
